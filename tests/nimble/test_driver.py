"""Tests for the Nimble-style driver: profiling, kernels, variant compilation."""

import pytest

from repro.analysis import find_loop_nests
from repro.hw import normalize
from repro.ir import I32, ProgramBuilder, U32
from repro.nimble import (
    ACEV, GARP, compile_variants, extract_kernels, profile_summary,
    select_kernel, target_by_name,
)
from tests.conftest import build_fig21, build_fig41


class TestTargets:
    def test_lookup(self):
        assert target_by_name("acev") is ACEV
        assert target_by_name("garp") is GARP

    def test_unknown_target_is_a_repro_error_naming_the_choices(self):
        from repro.errors import ReproError
        with pytest.raises(ReproError, match="acev"):
            target_by_name("nope")

    def test_unknown_target_did_you_mean(self):
        from repro.errors import ReproError
        with pytest.raises(ReproError, match="did you mean 'garp'"):
            target_by_name("grap")

    def test_port_override(self):
        t = ACEV.with_mem_ports(1)
        assert t.mem_ports == 1 and ACEV.mem_ports == 2


class TestProfiler:
    def test_loops_dominate(self, fig21):
        s = profile_summary(fig21)
        assert s.n_loops == 2
        assert s.hot_share > 0.9      # nearly all cost is inside the nest

    def test_threshold_filters(self):
        b = ProgramBuilder("p")
        a = b.array("a", (64,), U32, output=True)
        x = b.local("x", U32)
        b.assign(x, 0)
        # one hot loop, one cold loop
        with b.loop("i", 0, 60) as i:
            a[i] = i * 3 + 1
        with b.loop("k", 0, 1) as k:
            b.assign(x, b.var("x") + 1)
        s = profile_summary(b.build(), threshold=0.5)
        assert s.n_loops == 2 and s.n_hot_loops == 1


class TestKernelSelection:
    def test_annotated_preferred(self, fig21):
        sel = select_kernel(fig21)
        assert sel.annotated and sel.feasible
        assert sel.nest.inner.annotations.get("kernel")

    def test_extract_reports_infeasible(self):
        b = ProgramBuilder("p")
        out = b.array("out", (8,), U32, output=True)
        acc = b.local("acc", U32)
        b.assign(acc, 1)
        with b.loop("i", 0, 8) as i:
            with b.loop("j", 0, 4, kernel=True):
                b.assign(acc, b.var("acc") * 3)
            out[i] = b.var("acc")
        cands = extract_kernels(b.build())
        assert len(cands) == 1 and not cands[0].feasible


class TestVariantCompilation:
    @pytest.fixture(scope="class")
    def vs41(self):
        prog = build_fig41(m=32, n=16)
        nest = find_loop_nests(prog)[0]
        return compile_variants(prog, nest, factors=(2, 4, 8))

    def test_all_points_present(self, vs41):
        labels = [p.label for p in vs41.all_points()]
        assert labels == ["original", "pipelined", "squash(2)", "squash(4)",
                          "squash(8)", "jam(2)", "jam(4)", "jam(8)"]

    def test_squash_ii_monotone_nonincreasing(self, vs41):
        iis = [vs41.squash[k].ii for k in (2, 4, 8)]
        assert iis == sorted(iis, reverse=True)

    def test_squash_operators_constant(self, vs41):
        rows = {vs41.squash[k].op_rows for k in (2, 4, 8)}
        assert rows == {vs41.original.op_rows}

    def test_jam_operators_scale(self, vs41):
        assert vs41.jam[4].op_rows == pytest.approx(
            2 * vs41.jam[2].op_rows, rel=0.01)

    def test_squash_cheaper_than_jam(self, vs41):
        for k in (2, 4, 8):
            assert vs41.squash[k].area_rows < vs41.jam[k].area_rows

    def test_speedups(self, vs41):
        base = vs41.original
        sq = normalize(base, vs41.squash[4])
        jm = normalize(base, vs41.jam[4])
        assert sq.speedup > 1.5
        assert jm.speedup == pytest.approx(4.0, rel=0.01)
        # port-free kernel: squash efficiency beats jam efficiency
        assert sq.efficiency > jm.efficiency

    def test_total_cycles_consistency(self, vs41):
        base = vs41.original
        assert base.total_cycles == base.ii * 32 * 16

    def test_auto_kernel_selection(self):
        prog = build_fig21(m=8, n=4)
        vs = compile_variants(prog, factors=(2,))
        assert vs.squash[2].ii <= vs.original.ii


class TestMemoryCongestion:
    """The paper's central contrast: jam saturates on the memory bus."""

    @pytest.fixture(scope="class")
    def mem_variants(self):
        b = ProgramBuilder("membound")
        src = b.array("src", (256,), U32)
        out = b.array("out", (256,), U32, output=True)
        fin = b.array("fin", (32,), U32, output=True)
        x = b.local("x", U32)
        with b.loop("i", 0, 32) as i:
            b.assign(x, src[i])
            with b.loop("j", 0, 8, kernel=True) as j:
                b.assign(x, b.var("x") * 3 + src[(i + j) & 255])
                out[i * 8 + j] = b.var("x")
            fin[i] = b.var("x")
        prog = b.build()
        nest = find_loop_nests(prog)[0]
        return compile_variants(prog, nest, factors=(2, 4, 8))

    def test_jam_ii_grows_with_factor(self, mem_variants):
        iis = [mem_variants.jam[k].ii for k in (2, 4, 8)]
        assert iis[2] > iis[0]

    def test_squash_ii_never_grows(self, mem_variants):
        iis = [mem_variants.squash[k].ii for k in (2, 4, 8)]
        assert iis == sorted(iis, reverse=True)

    def test_jam_speedup_saturates(self, mem_variants):
        base = mem_variants.original
        s = [normalize(base, mem_variants.jam[k]).speedup for k in (2, 4, 8)]
        assert s[2] < 8  # sub-linear under congestion

    def test_squash_efficiency_wins_under_congestion(self, mem_variants):
        base = mem_variants.original
        sq = normalize(base, mem_variants.squash[8])
        jm = normalize(base, mem_variants.jam[8])
        assert sq.efficiency > jm.efficiency
