"""End-to-end integration: full pipelines from source nest to verified
transformed software plus priced hardware, across all workloads."""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import find_kernel_nests
from repro.core import jam_then_squash, unroll_and_squash
from repro.hw import normalize, simulate_modulo, squash_distances, modulo_schedule
from repro.ir import run_program, validate_program
from repro.ir.randgen import random_squashable_nest
from repro.nimble import ACEV, compile_variants
from repro.transforms import standard_cleanup
from repro.workloads import des, iir, skipjack, table_6_1_benchmarks


class TestFullPipelinePerKernel:
    """For each Table 6.1 kernel: transform, verify, price, simulate."""

    @pytest.mark.parametrize("bm", table_6_1_benchmarks(),
                             ids=lambda b: b.name)
    def test_squash_functional_and_priced(self, bm):
        prog = bm.build(**bm.small_kwargs)
        nest = find_kernel_nests(prog)[0]
        ref = run_program(prog, params=bm.params)

        res = unroll_and_squash(prog, nest, 4,
                                delay_fn=ACEV.library.delay)
        validate_program(res.program)
        got = run_program(res.program, params=bm.params)
        for name in prog.output_arrays():
            np.testing.assert_array_equal(ref.arrays[name],
                                          got.arrays[name], err_msg=bm.name)

        # price + timing-validate the squashed schedule
        edges = squash_distances(res.dfg, res.stages)
        sched = modulo_schedule(res.dfg, ACEV.library, edges=edges)
        sim = simulate_modulo(res.dfg, ACEV.library, sched, 8, edges=edges)
        assert sim.ok, (bm.name, sim.violations[:2])

    @pytest.mark.parametrize("bm", table_6_1_benchmarks(),
                             ids=lambda b: b.name)
    def test_cleanup_then_squash(self, bm):
        """§4.2: the standard optimization pipeline runs before squash."""
        prog = bm.build(**bm.small_kwargs)
        cleaned = standard_cleanup(prog)
        ref = run_program(prog, params=bm.params)
        nest = find_kernel_nests(cleaned)[0]
        res = unroll_and_squash(cleaned, nest, 2)
        got = run_program(res.program, params=bm.params)
        for name in prog.output_arrays():
            np.testing.assert_array_equal(ref.arrays[name],
                                          got.arrays[name], err_msg=bm.name)


class TestVariantConsistency:
    def test_speedup_formula_vs_simulation(self):
        """DesignPoint.total_cycles must agree with schedule replay."""
        prog = skipjack.build_program(m_blocks=8, variant="hw")
        nest = find_kernel_nests(prog)[0]
        vs = compile_variants(prog, nest, factors=(2,))
        p = vs.pipelined
        # replay M*N iterations of the pipelined schedule
        from repro.core import analyze_nest
        _, _, _, dfg, _, _ = analyze_nest(prog, nest, 1,
                                          delay_fn=ACEV.library.delay)
        sched = modulo_schedule(dfg, ACEV.library)
        iters = p.outer_trip * p.inner_trip
        sim = simulate_modulo(dfg, ACEV.library, sched, iters)
        # formula counts II per iteration; replay adds the drain once
        assert abs(sim.total_cycles - p.total_cycles) <= sched.length

    def test_jam_then_squash_composes(self):
        prog = skipjack.build_program(m_blocks=8, variant="hw", n_rounds=8)
        nest = find_kernel_nests(prog)[0]
        res = jam_then_squash(prog, nest, 2, 2)
        ref = run_program(prog).arrays["data_out"]
        got = run_program(res.program).arrays["data_out"]
        assert list(ref) == list(got)


class TestRandomNestPipeline:
    @given(seed=st.integers(0, 500), ds=st.sampled_from([2, 3, 4]))
    @settings(max_examples=25, deadline=None)
    def test_full_pipeline_random(self, seed, ds):
        prog, _ = random_squashable_nest(random.Random(seed))
        nest = find_kernel_nests(prog)[0]
        res = unroll_and_squash(prog, nest, ds, delay_fn=ACEV.library.delay)
        # software equivalence
        ref = run_program(prog).arrays["out"]
        got = run_program(res.program).arrays["out"]
        assert list(ref) == list(got)
        # hardware: schedule exists, meets its bounds, simulates clean
        edges = squash_distances(res.dfg, res.stages)
        sched = modulo_schedule(res.dfg, ACEV.library, edges=edges)
        assert sched.ii >= max(sched.rec_mii, sched.res_mii)
        assert simulate_modulo(res.dfg, ACEV.library, sched, 6,
                               edges=edges).ok

    @given(seed=st.integers(0, 300))
    @settings(max_examples=15, deadline=None)
    def test_squash_ii_never_worse_than_pipelined(self, seed):
        """The core performance claim, on random nests."""
        prog, _ = random_squashable_nest(random.Random(seed))
        nest = find_kernel_nests(prog)[0]
        from repro.core import analyze_nest
        _, _, _, dfg0, _, _ = analyze_nest(prog, nest, 1,
                                           delay_fn=ACEV.library.delay)
        pipelined = modulo_schedule(dfg0, ACEV.library)
        res = unroll_and_squash(prog, nest, 4, delay_fn=ACEV.library.delay,
                                emit=False)
        edges = squash_distances(res.dfg, res.stages)
        squashed = modulo_schedule(res.dfg, ACEV.library, edges=edges)
        assert squashed.ii <= pipelined.ii
