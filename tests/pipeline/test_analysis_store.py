"""The two-tier analysis cache: LRU bounds, disk round-trips, and the
content keys that make cross-process sharing sound."""

import pytest

from repro.analysis.loops import find_loop_nests
from repro.caches import PinningLRU
from repro.core.legality import PreparedSquash
from repro.pipeline.analysis import (
    AnalysisCache, BaseAnalysis, content_key,
)
from tests.conftest import build_fig21, build_fig41


def _nest(prog):
    return find_loop_nests(prog)[0]


class TestLRUEviction:
    def test_maxsize_actually_bounds_entries(self):
        """The satellite guarantee: ``maxsize`` bounds memory."""
        cache = AnalysisCache(maxsize=3)
        programs = [build_fig41(m=6 + i) for i in range(8)]
        for prog in programs:
            cache.get_or_build(prog, _nest(prog))
        assert len(cache) <= 3

    def test_eviction_is_lru_ordered(self):
        cache = AnalysisCache(maxsize=2)
        p1, p2, p3 = (build_fig41(m=6 + i) for i in range(3))
        cache.get_or_build(p1, _nest(p1))
        cache.get_or_build(p2, _nest(p2))
        cache.get_or_build(p1, _nest(p1))   # refresh p1
        cache.get_or_build(p3, _nest(p3))   # evicts p2, not p1
        hits = cache.hits
        cache.get_or_build(p1, _nest(p1))
        assert cache.hits == hits + 1  # p1 survived

    def test_pinning_lru_bound_under_churn(self):
        lru = PinningLRU(maxsize=4)
        for i in range(100):
            lru.put(i, (), i * 2)
            assert len(lru) <= 4
        assert lru.get(99) == 198
        assert lru.get(0) is None


class TestDiskTier:
    def test_fresh_cache_hits_disk_not_rebuild(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.store import analysis_store
        prog = build_fig21()
        nest = _nest(prog)
        AnalysisCache().get_or_build(prog, nest)
        before = analysis_store().stats.hits
        # a different AnalysisCache (fresh process stand-in), same content
        clone = build_fig21()
        base = AnalysisCache().get_or_build(clone, _nest(clone))
        assert analysis_store().stats.hits > before
        assert isinstance(base, BaseAnalysis)
        assert base.dfg is not None

    def test_mem_mode_skips_disk(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_ANALYSIS_CACHE", "mem")
        from repro.store import analysis_store
        prog = build_fig21()
        AnalysisCache().get_or_build(prog, _nest(prog))
        assert len(analysis_store()) == 0

    def test_prepared_check_round_trips(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        prog = build_fig21()
        nest = _nest(prog)
        first = AnalysisCache()
        prep = first.prep_for(prog, nest)
        assert isinstance(prep, PreparedSquash)
        clone = build_fig21()
        second = AnalysisCache()
        loaded = second.prep_for(clone, _nest(clone))
        for ds in (1, 2, 4):
            a = first.check_for(prog, nest, ds)
            b = second.check_for(clone, _nest(clone), ds)
            assert (a.ok, a.reasons) == (b.ok, b.reasons)
            assert a.outer_trip == b.outer_trip
        assert loaded.base_failures == prep.base_failures


class TestContentKey:
    def test_same_content_same_key_across_builds(self):
        p1, p2 = build_fig41(), build_fig41()
        assert content_key(p1, _nest(p1)) == content_key(p2, _nest(p2))

    def test_different_programs_differ(self):
        p1, p2 = build_fig41(m=8), build_fig41(m=9)
        assert content_key(p1, _nest(p1)) != content_key(p2, _nest(p2))

    def test_foreign_nest_has_no_key(self):
        p1, p2 = build_fig41(), build_fig21()
        assert content_key(p1, _nest(p2)) is None


class TestCheckEquivalence:
    """classify(prepare(...)) must equal the monolithic check everywhere,
    including on designs the compiler rejects."""

    @pytest.mark.parametrize("ds", [1, 2, 4, 8])
    def test_wavelet_rejection_reasons_identical(self, ds):
        from repro.core.legality import (
            check_squash, classify_squash, prepare_squash,
        )
        from repro.workloads import benchmark_by_name
        bm = benchmark_by_name("wavelet")
        prog = bm.build(**bm.eval_kwargs)
        nest = find_loop_nests(prog)[0]
        mono = check_squash(prog, nest, ds)
        split = classify_squash(prepare_squash(prog, nest), ds)
        assert mono.ok == split.ok
        assert mono.reasons == split.reasons
        assert (mono.outer_trip, mono.inner_trip) == \
            (split.outer_trip, split.inner_trip)
