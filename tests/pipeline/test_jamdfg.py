"""Differential tests for the DFG-level jam derivation (repro.core.jamdfg).

Every test compares the default fast path (``REPRO_DFG_JAM=1``: derive
the fused inner loop's analysis directly from the untransformed nest)
against the historical route (``=0``: unroll-and-jam the whole program,
re-locate the nest, re-lower) and requires *identical* artifacts —
DFG nodes/edges, SSA names, legality verdicts and reason strings,
DesignPoints — or identical errors.
"""

import random

import pytest

import repro
from repro.analysis import find_loop_nests
from repro.errors import LegalityError
from repro.ir import ProgramBuilder, U32
from repro.ir.randgen import SquashNestSpec, ValueDomain, \
    random_squashable_nest
from repro.pipeline import CompilationPipeline


@pytest.fixture(autouse=True)
def _fresh_caches():
    repro.clear_caches()
    yield
    repro.clear_caches()


def build_nest(m=8, n=6):
    """A jam-legal 2-nest with a scalar recurrence in the inner loop."""
    b = ProgramBuilder("jamkern")
    inp = b.array("in", (m,), U32)
    out = b.array("out", (m,), U32, output=True)
    x = b.local("x", U32)
    with b.loop("i", 0, m) as i:
        b.assign(x, inp[i])
        with b.loop("j", 0, n) as j:
            b.assign(x, (b.var("x") + j) * 3)
        out[i] = b.var("x")
    prog = b.build()
    return prog, find_loop_nests(prog)[0]


def build_outer_carried():
    """Outer-carried scalar: jam-illegal (check_outer_parallel fails)."""
    b = ProgramBuilder("carried")
    out = b.array("out", (8,), U32, output=True)
    x = b.local("x", U32)
    b.assign(x, 0)
    with b.loop("i", 0, 8) as i:
        with b.loop("j", 0, 4):
            b.assign(x, b.var("x") + 1)
        out[i] = b.var("x")
    prog = b.build()
    return prog, find_loop_nests(prog)[0]


def build_trip_zero():
    b = ProgramBuilder("tripzero")
    out = b.array("out", (4,), U32, output=True)
    x = b.local("x", U32)
    with b.loop("i", 0, 0) as i:
        b.assign(x, 0)
        with b.loop("j", 0, 4):
            b.assign(x, b.var("x") + 1)
        out[i] = b.var("x")
    prog = b.build()
    return prog, find_loop_nests(prog)[0]


def _artifacts(run):
    dfg = run.analyzed.dfg
    chk = run.analyzed.check
    return {
        "point": run.point,
        "nodes": [(n.nid, n.op) for n in dfg.nodes],
        "edges": sorted((e.src.nid, e.dst.nid, e.dist) for e in dfg.edges),
        "ssa_entry": sorted(run.analyzed.ssa.entry),
        "ssa_exit": sorted(run.analyzed.ssa.exit),
        "check": (chk.ok, chk.reasons, chk.outer_trip, chk.inner_trip),
    }


def _run_both(monkeypatch, prog, nest, factor, **kw):
    out = []
    for mode in ("0", "1"):
        repro.clear_caches()
        monkeypatch.setenv("REPRO_DFG_JAM", mode)
        monkeypatch.setenv("REPRO_ANALYSIS_CACHE", "mem")
        pipe = CompilationPipeline(**kw)
        out.append(pipe.run(prog, nest, "jam", ds=factor))
    return out


class TestDerivedJamParity:
    @pytest.mark.parametrize("factor", [1, 2, 3, 4, 8, 11])
    def test_identical_artifacts_all_factors(self, monkeypatch, factor):
        prog, nest = build_nest()
        slow, fast = _run_both(monkeypatch, prog, nest, factor)
        assert not slow.transformed.derived_jam
        assert fast.transformed.derived_jam
        assert _artifacts(slow) == _artifacts(fast)

    def test_factor_above_trip_clamps_identically(self, monkeypatch):
        prog, nest = build_nest(m=3)
        slow, fast = _run_both(monkeypatch, prog, nest, 5)
        assert _artifacts(slow) == _artifacts(fast)

    def test_vliw_target_parity(self, monkeypatch):
        from repro.nimble.target import decode_target

        prog, nest = build_nest()
        slow, fast = _run_both(monkeypatch, prog, nest, 2,
                               target=decode_target("vliw4"))
        assert _artifacts(slow) == _artifacts(fast)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_nests_identical(self, monkeypatch, seed):
        rng = random.Random(seed)
        prog, outer = random_squashable_nest(rng, SquashNestSpec(),
                                             ValueDomain())
        nest = next(n for n in find_loop_nests(prog) if n.outer is outer)
        for factor in (2, 3):
            slow, fast = _run_both(monkeypatch, prog, nest, factor)
            assert _artifacts(slow) == _artifacts(fast), \
                f"seed {seed} factor {factor}"


class TestDerivedJamErrors:
    def _errors_both(self, monkeypatch, prog, nest, factor):
        errs = []
        for mode in ("0", "1"):
            repro.clear_caches()
            monkeypatch.setenv("REPRO_DFG_JAM", mode)
            monkeypatch.setenv("REPRO_ANALYSIS_CACHE", "mem")
            with pytest.raises(LegalityError) as exc:
                CompilationPipeline().run(prog, nest, "jam", ds=factor)
            errs.append((str(exc.value), list(exc.value.reasons)))
        return errs

    def test_outer_carried_scalar_same_rejection(self, monkeypatch):
        prog, nest = build_outer_carried()
        slow, fast = self._errors_both(monkeypatch, prog, nest, 2)
        assert slow == fast
        assert "unroll-and-jam rejected" in slow[0]

    def test_trip_zero_same_rejection(self, monkeypatch):
        prog, nest = build_trip_zero()
        slow, fast = self._errors_both(monkeypatch, prog, nest, 2)
        assert slow == fast
        assert "jammed nest not found" in slow[0]

    def test_bad_factor_same_rejection(self, monkeypatch):
        prog, nest = build_nest()
        slow, fast = self._errors_both(monkeypatch, prog, nest, 0)
        assert slow == fast
        assert "jam factor must be >= 1" in slow[0]


class TestDerivedJamMechanics:
    def test_fused_nest_matches_program_transform(self):
        from repro.core.jamdfg import fused_nest
        from repro.core.squash import locate_jammed_nest
        from repro.ir.printer import stmt_to_str
        from repro.transforms.unroll_and_jam import unroll_and_jam

        prog, nest = build_nest()
        jammed = unroll_and_jam(prog, nest, 2)
        real = locate_jammed_nest(jammed, nest, 2)
        synth, _shim = fused_nest(prog, nest, 2)
        assert stmt_to_str(synth.outer) == stmt_to_str(real.outer)

    def test_original_program_not_mutated(self, monkeypatch):
        from repro.ir.printer import program_to_str

        monkeypatch.setenv("REPRO_DFG_JAM", "1")
        prog, nest = build_nest()
        before = program_to_str(prog)
        locals_before = dict(prog.locals)
        CompilationPipeline().run(prog, nest, "jam", ds=3)
        assert program_to_str(prog) == before
        assert prog.locals == locals_before

    def test_duplicate_outer_var_falls_back(self, monkeypatch):
        # two nests sharing the outer IV: the fast path must defer to
        # the program-level route (nest re-location could mismatch)
        monkeypatch.setenv("REPRO_DFG_JAM", "1")
        b = ProgramBuilder("dup")
        inp = b.array("in", (8,), U32)
        out = b.array("out", (8,), U32, output=True)
        x = b.local("x", U32)
        with b.loop("i", 0, 8) as i:
            b.assign(x, inp[i])
            with b.loop("j", 0, 4) as j:
                b.assign(x, b.var("x") + j)
            out[i] = b.var("x")
        with b.loop("i", 0, 8) as i:
            b.assign(x, inp[i])
            with b.loop("j", 0, 4) as j:
                b.assign(x, b.var("x") * 2 + j)
            out[i] = b.var("x") + out[i]
        prog = b.build()
        nest = find_loop_nests(prog)[0]
        run = CompilationPipeline().run(prog, nest, "jam", ds=2)
        assert not run.transformed.derived_jam
        assert run.transformed.program is not prog

    def test_disk_tier_round_trips(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_DFG_JAM", "1")
        monkeypatch.setenv("REPRO_ANALYSIS_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        prog, nest = build_nest()
        cold = CompilationPipeline().run(prog, nest, "jam", ds=2)
        repro.clear_caches(memory_only=True)
        warm = CompilationPipeline().run(prog, nest, "jam", ds=2)
        assert _artifacts(cold) == _artifacts(warm)
