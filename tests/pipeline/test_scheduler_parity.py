"""Scheduler parity across the full workload suite (ISSUE satellite).

Every pipelined variant of every Table 6.1 workload must schedule under
both modulo strategies and replay-validate (the pipeline's validation
stage raises otherwise), and the backtracking scheduler must never
return a worse II than the iterative modulo scheduler.
"""

import pytest

from repro.explore import DesignSpace, evaluate
from repro.hw import simulate_modulo
from repro.workloads import table_6_1_benchmarks

FACTORS = (2, 4)
PIPELINED_VARIANTS = ("pipelined", "squash", "jam")


@pytest.fixture(scope="module")
def parity_result():
    kernels = tuple(bm.name for bm in table_6_1_benchmarks())
    space = DesignSpace(kernels=kernels, variants=PIPELINED_VARIANTS,
                        factors=FACTORS,
                        schedulers=("modulo", "backtrack"))
    return evaluate(space.enumerate(), jobs=None)


def test_every_design_schedules_under_both_strategies(parity_result):
    assert not parity_result.skips(), \
        [(s.label, s.reason) for s in parity_result.skips()]
    points = parity_result.points()
    # 5 kernels x (pipelined + 2 squash + 2 jam) x 2 schedulers
    assert len(points) == 5 * 5 * 2


def test_backtracking_never_worse_than_iterative(parity_result):
    by_design = {}
    for q, p in parity_result.pairs():
        by_design[(q.kernel, q.variant, q.ds, q.scheduler)] = p
    compared = 0
    for (kernel, variant, ds, sched), p in by_design.items():
        if sched != "modulo":
            continue
        bt = by_design[(kernel, variant, ds, "backtrack")]
        assert bt.ii <= p.ii, \
            f"{kernel}/{variant}({ds}): backtrack II {bt.ii} > " \
            f"modulo II {p.ii}"
        compared += 1
    assert compared == 5 * 5


def test_backtracking_schedule_replay_validates_directly():
    """Belt and braces: replay one backtracking schedule by hand."""
    from repro.analysis import find_loop_nests
    from repro.core import analyze_nest
    from repro.hw import ACEV_LIBRARY, squash_distances
    from repro.hw.schedulers import backtracking_modulo_schedule
    from tests.conftest import build_fig41

    prog = build_fig41()
    nest = find_loop_nests(prog)[0]
    _, _, _, dfg, sa, _ = analyze_nest(prog, nest, 4,
                                       delay_fn=ACEV_LIBRARY.delay)
    edges = squash_distances(dfg, sa)
    sched = backtracking_modulo_schedule(dfg, ACEV_LIBRARY, edges=edges)
    sim = simulate_modulo(dfg, ACEV_LIBRARY, sched, 8, edges=edges)
    assert sim.ok, sim.violations[:3]
