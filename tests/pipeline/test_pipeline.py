"""Tests for the staged CompilationPipeline: artifacts, shared analysis,
scheduler resolution, and error provenance."""

import pytest

import repro
from repro.analysis import find_loop_nests
from repro.errors import LegalityError, ScheduleError
from repro.hw.listsched import ListSchedule
from repro.hw.modulo import ModuloSchedule
from repro.hw.schedulers import _REGISTRY, register_scheduler
from repro.ir import ProgramBuilder, U32
from repro.nimble import compile_original, compile_squash, compile_variants
from repro.pipeline import (
    VARIANT_PLANS, AnalyzedDFG, BuiltKernel, CompilationPipeline,
    PipelineRun, ScheduledDesign, TransformedNest, ValidatedDesign,
    analysis_cache, variant_label,
)
from tests.conftest import build_fig21, build_fig41


@pytest.fixture
def fig41_nest():
    prog = build_fig41(m=32, n=16)
    return prog, find_loop_nests(prog)[0]


@pytest.fixture(autouse=True)
def _fresh_caches():
    repro.clear_caches()
    yield
    repro.clear_caches()


def build_illegal_nest():
    """Inner trip count depends on the outer IV: squash-illegal."""
    b = ProgramBuilder("badkernel")
    out = b.array("out", (8,), U32, output=True)
    x = b.local("x", U32)
    b.assign(x, 0)
    with b.loop("i", 0, 8) as i:
        with b.loop("j", 0, i):
            b.assign(x, b.var("x") + 1)
        out[i] = b.var("x")
    prog = b.build()
    return prog, find_loop_nests(prog)[0]


class TestStageArtifacts:
    def test_run_returns_full_artifact_trail(self, fig41_nest):
        prog, nest = fig41_nest
        run = CompilationPipeline().run(prog, nest, "squash", ds=4)
        assert isinstance(run, PipelineRun)
        assert isinstance(run.built, BuiltKernel)
        assert isinstance(run.transformed, TransformedNest)
        assert isinstance(run.analyzed, AnalyzedDFG)
        assert isinstance(run.scheduled, ScheduledDesign)
        assert isinstance(run.validated, ValidatedDesign)
        assert run.validated.ok
        assert run.point.variant == "squash" and run.point.factor == 4

    def test_original_is_list_scheduled(self, fig41_nest):
        prog, nest = fig41_nest
        run = CompilationPipeline().run(prog, nest, "original")
        assert run.scheduled.scheduler == "list"
        assert isinstance(run.scheduled.schedule, ListSchedule)
        assert not run.scheduled.pipelined
        assert run.point.rec_mii == 0 and run.point.res_mii == 0

    def test_pipelined_uses_modulo_by_default(self, fig41_nest):
        prog, nest = fig41_nest
        run = CompilationPipeline().run(prog, nest, "pipelined")
        assert run.scheduled.scheduler == "modulo"
        assert isinstance(run.scheduled.schedule, ModuloSchedule)
        assert run.scheduled.pipelined

    def test_squash_carries_stages_chains_edges(self, fig41_nest):
        prog, nest = fig41_nest
        run = CompilationPipeline().run(prog, nest, "squash", ds=4)
        a = run.analyzed
        assert a.stages is not None and a.stages.ds == 4
        assert a.chains is not None and a.edges is not None

    def test_jam_transform_defers_to_analysis(self, fig41_nest):
        # default: the transform stage defers and the fused DFG is
        # derived directly from the untransformed nest (repro.core.jamdfg)
        prog, nest = fig41_nest
        run = CompilationPipeline().run(prog, nest, "jam", ds=2)
        assert run.transformed.derived_jam
        assert run.transformed.program is prog
        assert run.transformed.outer_trip == 32   # pre-transform trips
        assert run.transformed.inner_trip == 16

    def test_jam_transform_rewrites_program(self, fig41_nest, monkeypatch):
        monkeypatch.setenv("REPRO_DFG_JAM", "0")
        prog, nest = fig41_nest
        run = CompilationPipeline().run(prog, nest, "jam", ds=2)
        assert not run.transformed.derived_jam
        assert run.transformed.program is not prog
        assert run.transformed.outer_trip == 32   # pre-transform trips
        assert run.transformed.inner_trip == 16

    def test_every_variant_has_a_plan(self):
        from repro.explore.space import VARIANTS
        assert set(VARIANT_PLANS) == set(VARIANTS)

    def test_unknown_variant_rejected(self, fig41_nest):
        prog, nest = fig41_nest
        with pytest.raises(ValueError, match="unknown variant"):
            CompilationPipeline().compile(prog, nest, "unrolled")

    def test_variant_label(self):
        assert variant_label("original") == "original"
        assert variant_label("squash", ds=8) == "squash(8)"
        assert variant_label("jam+squash", ds=4, jam=2) == \
            "jam(2)+squash(4)"


class TestSharedAnalysis:
    def test_variants_share_one_base_analysis(self, fig41_nest):
        prog, nest = fig41_nest
        pipe = CompilationPipeline()
        runs = [pipe.run(prog, nest, "original"),
                pipe.run(prog, nest, "pipelined"),
                pipe.run(prog, nest, "squash", ds=2),
                pipe.run(prog, nest, "squash", ds=4)]
        dfgs = {id(r.analyzed.dfg) for r in runs}
        assert len(dfgs) == 1      # one shared DFG across all variants
        cache = analysis_cache()
        assert cache.misses == 1 and cache.hits == 3

    def test_clear_caches_drops_shared_analysis(self, fig41_nest):
        prog, nest = fig41_nest
        pipe = CompilationPipeline()
        a = pipe.run(prog, nest, "pipelined").analyzed.dfg
        repro.clear_caches()
        assert len(analysis_cache()) == 0
        b = pipe.run(prog, nest, "pipelined").analyzed.dfg
        assert a is not b

    def test_env_toggle_disables_sharing(self, fig41_nest, monkeypatch):
        monkeypatch.setenv("REPRO_ANALYSIS_CACHE", "0")
        prog, nest = fig41_nest
        pipe = CompilationPipeline()
        a = pipe.run(prog, nest, "pipelined").analyzed.dfg
        b = pipe.run(prog, nest, "pipelined").analyzed.dfg
        assert a is not b

    def test_sharing_does_not_change_results(self, fig41_nest, monkeypatch):
        prog, nest = fig41_nest
        shared = compile_variants(prog, nest, factors=(2, 4))
        monkeypatch.setenv("REPRO_ANALYSIS_CACHE", "0")
        repro.clear_caches()
        unshared = compile_variants(prog, nest, factors=(2, 4))
        assert [p.__dict__ for p in shared.all_points()] == \
            [p.__dict__ for p in unshared.all_points()]

    def test_lru_bound_holds(self, fig41_nest):
        from repro.pipeline import AnalysisCache
        cache = AnalysisCache(maxsize=2)
        progs = [build_fig41(m=8 * (i + 1)) for i in range(3)]
        for p in progs:
            nest = find_loop_nests(p)[0]
            cache.get_or_build(p, nest)
        assert len(cache) == 2     # oldest entry evicted

    def test_illegal_nest_failure_is_cached(self):
        prog, nest = build_illegal_nest()
        pipe = CompilationPipeline()
        for _ in range(2):
            with pytest.raises(LegalityError):
                pipe.compile(prog, nest, "original")
        cache = analysis_cache()
        assert cache.misses == 1 and cache.hits == 1


class TestErrorProvenance:
    def test_legality_error_names_kernel_and_variant(self):
        prog, nest = build_illegal_nest()
        with pytest.raises(LegalityError) as exc:
            compile_squash(prog, nest, 4)
        msg = str(exc.value)
        assert "badkernel" in msg and "squash(4)" in msg
        assert "target=acev" in msg
        assert exc.value.reasons  # structured reasons preserved

    def test_schedule_error_names_scheduler(self, fig41_nest):
        class Failing:
            name = "failing"
            pipelined = True

            def schedule(self, dfg, lib, edges=None, max_ii=None):
                raise ScheduleError("no schedule found (synthetic)")

        register_scheduler(Failing())
        try:
            prog, nest = fig41_nest
            pipe = CompilationPipeline(scheduler="failing")
            with pytest.raises(ScheduleError) as exc:
                pipe.compile(prog, nest, "pipelined")
            msg = str(exc.value)
            assert "fig41/pipelined" in msg
            assert "scheduler=failing" in msg
            assert "no schedule found" in msg
        finally:
            _REGISTRY.pop("failing", None)

    def test_provenance_not_stacked_twice(self):
        prog, nest = build_illegal_nest()
        with pytest.raises(LegalityError) as exc:
            compile_squash(prog, nest, 4)
        assert str(exc.value).count("badkernel") == 1

    def test_non_pipelined_strategy_rejected_for_pipelined(self, fig41_nest):
        prog, nest = fig41_nest
        pipe = CompilationPipeline(scheduler="list")
        with pytest.raises(ScheduleError, match="not a pipelined strategy"):
            pipe.compile(prog, nest, "pipelined")

    def test_unresolvable_scheduler_is_schedule_error(self, fig41_nest):
        # a strategy missing from this process's registry (e.g. custom
        # one under spawn workers) must skip structurally, not crash
        prog, nest = fig41_nest
        pipe = CompilationPipeline(scheduler="not-registered-here")
        with pytest.raises(ScheduleError, match="unknown scheduler"):
            pipe.compile(prog, nest, "pipelined")


class TestThinWrappers:
    def test_wrappers_match_pipeline(self, fig41_nest):
        prog, nest = fig41_nest
        pipe = CompilationPipeline()
        assert compile_original(prog, nest).__dict__ == \
            pipe.compile(prog, nest, "original").__dict__
        assert compile_squash(prog, nest, 4).__dict__ == \
            pipe.compile(prog, nest, "squash", ds=4).__dict__

    def test_compile_query_scheduler_threading(self):
        from repro.explore.space import DesignQuery
        from repro.nimble.compiler import compile_query
        q = DesignQuery("iir", "squash", ds=2, scheduler="backtrack")
        point = compile_query(q)
        base = compile_query(DesignQuery("iir", "squash", ds=2))
        assert point.ii <= base.ii

    def test_scheduler_choice_flows_from_target(self):
        prog = build_fig21(m=8, n=4)
        nest = find_loop_nests(prog)[0]
        from repro.nimble.target import decode_target
        t = decode_target("acev::scheduler=backtrack")
        run = CompilationPipeline(t).run(prog, nest, "pipelined")
        assert run.scheduled.scheduler == "backtrack"
