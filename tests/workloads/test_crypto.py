"""Known-answer and IR-equivalence tests for the crypto workloads."""

import numpy as np
import pytest

from repro.analysis import find_kernel_nests
from repro.core import unroll_and_squash
from repro.ir import compile_program, run_program
from repro.workloads import des, skipjack


class TestSkipjackReference:
    def test_nist_known_answer(self):
        ct = skipjack.encrypt_block(skipjack.TEST_VECTOR["key"],
                                    skipjack.TEST_VECTOR["plaintext"])
        assert ct == skipjack.TEST_VECTOR["ciphertext"]

    def test_f_table_is_permutation(self):
        assert sorted(skipjack.F_TABLE) == list(range(256))

    def test_ecb_blocks_independent(self):
        key = skipjack.DEFAULT_KEY
        data = bytes(range(16))
        ct = skipjack.encrypt_ecb(key, data)
        assert ct[:8] == skipjack.encrypt_block(key, data[:8])
        assert ct[8:] == skipjack.encrypt_block(key, data[8:])

    def test_bad_sizes_rejected(self):
        with pytest.raises(ValueError):
            skipjack.encrypt_block(b"short", b"x" * 8)
        with pytest.raises(ValueError):
            skipjack.encrypt_ecb(skipjack.DEFAULT_KEY, b"x" * 9)

    def test_key_schedule_expansion(self):
        cv = skipjack.expanded_key_schedule(skipjack.DEFAULT_KEY)
        assert len(cv) == 128
        assert cv[0] == skipjack.DEFAULT_KEY[0]
        assert cv[10] == skipjack.DEFAULT_KEY[0]


class TestSkipjackIR:
    @pytest.mark.parametrize("variant", ["mem", "hw"])
    def test_matches_reference(self, variant):
        prog = skipjack.build_program(m_blocks=4, variant=variant)
        res = run_program(prog)
        exp = skipjack.reference_output(prog.arrays["data_in"].init)
        assert list(res.arrays["data_out"]) == list(exp)

    def test_hw_variant_uses_roms(self):
        prog = skipjack.build_program(m_blocks=2, variant="hw")
        assert prog.arrays["F"].rom and prog.arrays["cv"].rom
        prog = skipjack.build_program(m_blocks=2, variant="mem")
        assert not prog.arrays["F"].rom

    def test_compiled_engine_agrees(self):
        prog = skipjack.build_program(m_blocks=4, variant="hw")
        a = run_program(prog).arrays["data_out"]
        b = compile_program(prog)().arrays["data_out"]
        np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("ds", [2, 4, 8])
    @pytest.mark.parametrize("variant", ["mem", "hw"])
    def test_squash_preserves_encryption(self, ds, variant):
        prog = skipjack.build_program(m_blocks=8, variant=variant)
        nest = find_kernel_nests(prog)[0]
        res = unroll_and_squash(prog, nest, ds)
        exp = skipjack.reference_output(prog.arrays["data_in"].init)
        got = run_program(res.program).arrays["data_out"]
        assert list(got) == list(exp)

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            skipjack.build_program(variant="bogus")


class TestDESReference:
    def test_classic_known_answer(self):
        ct = des.encrypt_block(des.TEST_VECTOR["key"],
                               des.TEST_VECTOR["plaintext"])
        assert ct == des.TEST_VECTOR["ciphertext"]

    def test_ip_fp_inverse(self):
        for v in (0, 0x0123456789ABCDEF, (1 << 64) - 1, 0xDEADBEEFCAFEF00D):
            assert des.final_permutation(des.initial_permutation(v)) == v

    def test_core_composes_to_full(self):
        key, pt = des.TEST_VECTOR["key"], des.TEST_VECTOR["plaintext"]
        assert des.final_permutation(
            des.des_core(key, des.initial_permutation(pt))) == \
            des.encrypt_block(key, pt)

    def test_key_chunks_shape(self):
        ks = des.key_chunks(des.DEFAULT_KEY)
        assert ks.shape == (128,) and ks.max() < 64

    def test_sp_tables_cover_p_outputs(self):
        sp = des.sp_tables()
        assert sp.shape == (8, 64)
        # each table only sets its own P-scattered bit positions; the union
        # across boxes covers all 32 bits
        union = 0
        for s in range(8):
            box_or = int(np.bitwise_or.reduce(sp[s]))
            union |= box_or
        assert union == 0xFFFFFFFF


class TestDESIR:
    @pytest.mark.parametrize("variant", ["mem", "hw"])
    def test_matches_reference(self, variant):
        prog = des.build_program(m_blocks=3, variant=variant)
        res = run_program(prog)
        exp = des.reference_output(prog.arrays["data_in"].init)
        assert list(res.arrays["data_out"]) == list(exp)

    @pytest.mark.parametrize("ds", [2, 4])
    def test_squash_preserves_encryption(self, ds):
        prog = des.build_program(m_blocks=4, variant="hw")
        nest = find_kernel_nests(prog)[0]
        res = unroll_and_squash(prog, nest, ds)
        exp = des.reference_output(prog.arrays["data_in"].init)
        got = run_program(res.program).arrays["data_out"]
        assert list(got) == list(exp)

    def test_reduced_rounds(self):
        prog = des.build_program(m_blocks=2, variant="hw", n_rounds=4)
        res = run_program(prog)
        exp = des.reference_output(prog.arrays["data_in"].init, n_rounds=4)
        assert list(res.arrays["data_out"]) == list(exp)
