"""Tests for the IIR kernel and the Table 1.1 profiling workloads."""

import numpy as np
import pytest

from repro.analysis import find_kernel_nests, all_loops
from repro.core import unroll_and_squash
from repro.ir import run_program
from repro.nimble import profile_summary
from repro.workloads import (
    adpcm, epic, iir, mpeg2, simple, skipjack, table_1_1_programs,
    table_6_1_benchmarks, benchmark_by_name, wavelet,
)


class TestIIR:
    def test_matches_reference_bitexact(self):
        prog = iir.build_program(m_channels=3, n_points=16)
        res = run_program(prog, params=iir.default_params())
        exp = iir.reference_output(prog.arrays["x_in"].init, 3, 16)
        np.testing.assert_array_equal(res.arrays["y_out"], exp)

    def test_channels_independent(self):
        x = np.linspace(-1, 1, 32)
        one = iir.filter_channel(x)
        prog = iir.build_program(m_channels=2, n_points=32,
                                 data=np.concatenate([x, x]))
        res = run_program(prog, params=iir.default_params())
        np.testing.assert_array_equal(res.arrays["y_out"][:32], one)
        np.testing.assert_array_equal(res.arrays["y_out"][32:], one)

    @pytest.mark.parametrize("ds", [2, 4, 8])
    def test_squash_preserves_filter(self, ds):
        prog = iir.build_program(m_channels=8, n_points=12)
        nest = find_kernel_nests(prog)[0]
        res = unroll_and_squash(prog, nest, ds)
        exp = iir.reference_output(prog.arrays["x_in"].init, 8, 12)
        got = run_program(res.program, params=iir.default_params())
        np.testing.assert_array_equal(got.arrays["y_out"], exp)

    def test_filter_attenuates_impulse_tail(self):
        x = np.zeros(64)
        x[0] = 1.0
        y = iir.filter_channel(x)
        assert abs(y[-1]) < abs(y[:8]).max()


class TestADPCM:
    def test_ir_matches_reference(self):
        prog = adpcm.build_program(n_samples=64)
        res = run_program(prog)
        codes = adpcm.encode(prog.arrays["pcm"].init)
        np.testing.assert_array_equal(res.arrays["codes"], codes)
        np.testing.assert_array_equal(res.arrays["rec"], adpcm.decode(codes))

    def test_roundtrip_tracks_signal(self):
        t = np.arange(256)
        x = (5000 * np.sin(t / 6.0)).astype(np.int16)
        rec = adpcm.decode(adpcm.encode(x))
        err = np.abs(rec.astype(np.int64) - x).mean()
        assert err < 600  # 4-bit ADPCM tracks a smooth signal closely

    def test_profile_shape(self):
        # Table 1.1 row: 3 loops, all hot, ~all time in loops
        prog = adpcm.build_program(n_samples=128)
        s = profile_summary(prog)
        assert s.n_loops == 3 and s.n_hot_loops == 3
        assert s.hot_share > 0.95


class TestWavelet:
    def test_ir_matches_reference(self):
        prog = wavelet.build_program(n=16, levels=3, q=4)
        res = run_program(prog)
        ref = wavelet.haar2d(prog.arrays["img"].init, 3)
        np.testing.assert_array_equal(res.arrays["img"], ref.astype(np.int32))
        np.testing.assert_array_equal(
            res.arrays["qcoef"], wavelet.quantize(ref, 4).astype(np.int32))

    def test_energy_compacts_into_low_band(self):
        img = wavelet.build_program(n=16, levels=2).arrays["img"].init
        out = wavelet.haar2d(img, 2)
        low = np.abs(out[:4, :4]).mean()
        high = np.abs(out[8:, 8:]).mean()
        assert low > high


class TestEpic:
    def test_encoder_matches_reference(self):
        img = epic.default_image(16)
        bands, base, nz = epic.encode_reference(img, 2, 3)
        prog = epic.build_encoder(16, 2, 3)
        res = run_program(prog)
        assert res.arrays["stats"][0] == nz
        for k, bb in enumerate(bands):
            np.testing.assert_array_equal(
                res.arrays["bands"][k, :bb.shape[0], :bb.shape[1]], bb)

    def test_decoder_matches_reference(self):
        img = epic.default_image(16)
        bands, base, _ = epic.encode_reference(img, 2, 3)
        prog = epic.build_decoder(16, 2, 3)
        res = run_program(prog)
        recon = epic.decode_reference(bands, base, 3)
        np.testing.assert_array_equal(res.arrays["work"],
                                      recon.astype(np.int32))

    def test_reconstruction_close_to_original(self):
        img = epic.default_image(16)
        bands, base, _ = epic.encode_reference(img, 2, 3)
        recon = epic.decode_reference(bands, base, 3)
        err = np.abs(recon - img).mean()
        assert err < 25


class TestMpeg2:
    def test_ir_matches_reference(self):
        cur, ref = mpeg2._frames(16)
        mvs, coeffs, nz = mpeg2.encode_reference(cur, ref, 2, 4)
        prog = mpeg2.build_program(16, 2, 4)
        res = run_program(prog)
        assert res.arrays["stats"][0] == nz
        np.testing.assert_array_equal(res.arrays["coef"],
                                      coeffs.astype(np.int32))
        got_mv = [(int(a), int(b)) for a, b in res.arrays["mv"]]
        assert got_mv == mvs

    def test_motion_search_finds_shift(self):
        # cur is ref rolled by (1, 2): interior blocks should find it
        cur, ref = mpeg2._frames(16)
        dy, dx, sad0 = mpeg2.motion_search_reference(cur, ref, 8, 8, 2)
        _, _, sad_none = (0, 0, int(np.abs(
            cur[8:16, 8:16].astype(np.int64) - ref[8:16, 8:16]).sum()))
        assert sad0 <= sad_none

    def test_dct_dc_term(self):
        blk = np.full((8, 8), 16)
        out = mpeg2.dct8_reference(blk, mpeg2.cos_table())
        assert abs(out[0, 0]) > 8 * abs(out[1:, 1:]).max() or \
            np.abs(out[1:, 1:]).max() == 0


class TestRegistries:
    def test_table_6_1_complete(self):
        names = [b.name for b in table_6_1_benchmarks()]
        assert names == ["skipjack-mem", "skipjack-hw", "des-mem", "des-hw",
                         "iir"]

    def test_table_1_1_complete(self):
        names = [b.name for b in table_1_1_programs()]
        assert names == ["wavelet", "epic", "unepic", "adpcm", "mpeg2",
                         "skipjack"]

    def test_lookup(self):
        bm = benchmark_by_name("iir")
        assert bm.params  # coefficient bindings present
        with pytest.raises(KeyError):
            benchmark_by_name("nope")

    def test_all_small_builds_run(self):
        for bm in table_6_1_benchmarks():
            prog = bm.build(**bm.small_kwargs)
            run_program(prog, params=bm.params)

    def test_profile_concentration_matches_paper(self):
        """Table 1.1's claim: the hot loops cover >= 85% of execution."""
        for bm in table_1_1_programs():
            prog = bm.build(**bm.eval_kwargs)
            s = profile_summary(prog, params=bm.params)
            assert s.hot_share >= 0.85, (bm.name, s.hot_share)
            assert s.n_loops >= 2


class TestSimpleNest:
    def test_fg_reference(self):
        prog = simple.build_fg_nest(m=8, n=4)
        res = run_program(prog)
        exp = simple.fg_reference(prog.arrays["data_in"].init, 4)
        np.testing.assert_array_equal(res.arrays["data_out"], exp)

    def test_running_example_kernel_found(self):
        prog = simple.build_running_example()
        assert find_kernel_nests(prog)
