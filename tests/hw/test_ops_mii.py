"""Unit tests for the operator library and MII bounds."""

import pytest

from repro.analysis import find_loop_nests
from repro.core import analyze_nest, unroll_and_squash
from repro.core.dfg import DFGNode
from repro.hw import (
    ACEV_LIBRARY, GARP_LIBRARY, OperatorLibrary, min_ii, rec_mii, res_mii,
    squash_distances,
)
from repro.ir import F64, I32, ProgramBuilder, U8, U32
from tests.conftest import build_fig21, build_fig41


def _dfg(prog, ds=1, lib=ACEV_LIBRARY):
    nest = find_loop_nests(prog)[0]
    work, w_nest, ssa, dfg, sa, check = analyze_nest(prog, nest, ds,
                                                     delay_fn=lib.delay)
    return dfg, sa


class TestOperatorLibrary:
    def test_int_vs_float_specs(self):
        lib = ACEV_LIBRARY
        n_int = DFGNode(0, "binop", I32, op="add")
        n_flt = DFGNode(1, "binop", F64, op="add")
        assert lib.key_for(n_int) == "add"
        assert lib.key_for(n_flt) == "fadd"
        assert lib.delay(n_flt) > lib.delay(n_int)
        assert lib.rows(n_flt) > lib.rows(n_int)

    def test_inc_maps_to_add(self):
        n = DFGNode(0, "inc", I32, op="add")
        assert ACEV_LIBRARY.key_for(n) == "add"

    def test_mem_port_usage(self):
        lib = ACEV_LIBRARY
        assert lib.uses_mem_port(DFGNode(0, "load", U8, array="a"))
        assert lib.uses_mem_port(DFGNode(0, "store", U8, array="a"))
        assert not lib.uses_mem_port(DFGNode(0, "rom_load", U8, array="t"))
        assert not lib.uses_mem_port(DFGNode(0, "binop", U8, op="add"))

    def test_registers_and_consts_free(self):
        lib = ACEV_LIBRARY
        assert lib.rows(DFGNode(0, "reg", U8, name="x")) == 0
        assert lib.delay(DFGNode(0, "const", U8)) == 0

    def test_with_ports(self):
        lib = ACEV_LIBRARY.with_ports(1)
        assert lib.mem_ports == 1 and ACEV_LIBRARY.mem_ports == 2

    def test_packed_registers(self):
        lib = ACEV_LIBRARY.with_packed_registers(0.25)
        assert lib.reg_rows == 0.25


class TestRecMII:
    def test_fig21_recurrence(self):
        # cycle: add -> xor -> reg(a), delays 1+1, distance 1 => RecMII 2
        dfg, _ = _dfg(build_fig21())
        assert rec_mii(dfg, ACEV_LIBRARY.delay) == 2

    def test_fig41_recurrence(self):
        # add(1) + sub(1) + and(1) + mul(2) around distance-1 cycle => 5
        dfg, _ = _dfg(build_fig41())
        assert rec_mii(dfg, ACEV_LIBRARY.delay) == 5

    def test_acyclic_is_one(self):
        b = ProgramBuilder("p")
        a = b.array("a", (16,), U32, output=True)
        x = b.local("x", U32)
        with b.loop("i", 0, 4) as i:
            b.assign(x, i)
            with b.loop("j", 0, 4) as j:
                a[i] = i * 2
        dfg, _ = _dfg(b.build())
        # no scalar recurrence: bound only by trivial cycles (invariants)
        assert rec_mii(dfg, ACEV_LIBRARY.delay) <= 2

    def test_squash_distances_divide_recmii(self):
        prog = build_fig41()
        for ds in (2, 4, 8):
            dfg, sa = _dfg(prog, ds=ds)
            edges = squash_distances(dfg, sa)
            r = rec_mii(dfg, ACEV_LIBRARY.delay, edges)
            assert r == max(1, -(-5 // ds)), f"ds={ds}"

    def test_stage_deltas_telescope(self):
        # sum of per-edge distances around any cycle must scale by exactly ds
        prog = build_fig41()
        dfg, sa = _dfg(prog, ds=4)
        edges = squash_distances(dfg, sa)
        dist = {(e[0].nid, e[1].nid): e[2] for e in edges}
        # a-recurrence cycle: reg a -> add -> sub -> and -> mul -> reg a
        names = {n.name: n for n in dfg.nodes if n.name}
        # find cycle edges by walking defs: simply assert no negative distance
        assert all(d >= 0 for d in dist.values())


class TestResMII:
    def test_port_free_kernel(self):
        dfg, _ = _dfg(build_fig21())
        assert res_mii(dfg, ACEV_LIBRARY) == 1

    def test_memory_kernel(self):
        b = ProgramBuilder("p")
        src = b.array("src", (64,), U32)
        out = b.array("out", (16,), U32, output=True)
        x = b.local("x", U32)
        with b.loop("i", 0, 8) as i:
            b.assign(x, 0)
            with b.loop("j", 0, 4) as j:
                b.assign(x, b.var("x") + src[(i * 4 + j) & 63])
                out[i & 15] = b.var("x")
        dfg, _ = _dfg(b.build())
        # 1 load + 1 store per iteration, 2 ports -> ResMII 1; single port -> 2
        assert res_mii(dfg, ACEV_LIBRARY) == 1
        assert res_mii(dfg, GARP_LIBRARY) == 2

    def test_min_ii(self):
        dfg, _ = _dfg(build_fig41())
        assert min_ii(dfg, ACEV_LIBRARY) == 5


class TestRecMIIIntegerArithmetic:
    """Regression for the float-epsilon relaxation in
    ``_has_cycle_exceeding``: every weight is an integer, and the tie
    case ``delay == lam * distance`` (cycle weight exactly 0) must not
    count as an exceeding cycle."""

    def _tie_cycle(self, delays, dists):
        from repro.core.dfg import DFG
        g = DFG()
        nodes = [g.add_node(kind="binop", ty=U32, op="add", name=f"n{i}")
                 for i in range(len(delays))]
        for i, d in enumerate(dists):
            g.add_edge(nodes[i], nodes[(i + 1) % len(nodes)], d)
        delay_of = {n.nid: delays[i] for i, n in enumerate(nodes)}
        return g, (lambda n: delay_of[n.nid])

    def test_exact_tie_is_not_an_exceeding_cycle(self):
        from repro.hw.mii import _has_cycle_exceeding, default_edge_view
        # delays 2+2 over distances 1+1: delay == 2 * distance exactly
        g, delay = self._tie_cycle(delays=(2, 2), dists=(1, 1))
        edges = default_edge_view(g)
        assert _has_cycle_exceeding(edges, delay, 1)
        assert not _has_cycle_exceeding(edges, delay, 2)

    def test_recmii_unchanged_on_tie(self):
        g, delay = self._tie_cycle(delays=(2, 2), dists=(1, 1))
        assert rec_mii(g, delay) == 2

    def test_fractional_bound_still_ceils(self):
        # delay 3 over distance 2: RecMII = ceil(3/2) = 2, and at lam=2
        # the weight-(-1) cycle must not be mistaken for exceeding
        g, delay = self._tie_cycle(delays=(1, 2), dists=(1, 1))
        assert rec_mii(g, delay) == 2

    def test_self_cycle_tie(self):
        from repro.core.dfg import DFG
        from repro.hw.mii import _has_cycle_exceeding, default_edge_view
        g = DFG()
        n = g.add_node(kind="binop", ty=U32, op="mul", name="x")
        g.add_edge(n, n, 2)  # delay 4 over distance 2: tie at lam 2
        edges = default_edge_view(g)
        assert not _has_cycle_exceeding(edges, lambda _: 4, 2)
        assert _has_cycle_exceeding(edges, lambda _: 4, 1)
        assert rec_mii(g, lambda _: 4) == 2
