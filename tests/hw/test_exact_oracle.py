"""Differential testing: the exact scheduler as the heuristics' oracle.

Every Table 6.1 workload x pipelined variant is replayed through
``exact``, ``modulo``, and ``backtrack``; the oracle certifies the
minimum II, so the heuristics must never beat it, every emitted
schedule must replay cleanly through the (fixed) simulator, and the
known heuristic gaps — e.g. the iterative scheduler losing 3 cycles on
``des-mem``'s pipelined design — stay pinned.

The fast half sweeps factors (2, 4); the ``slow`` half (excluded from
tier-1, run as a separate non-blocking CI job) widens to the full
factor set, the combined jam+squash variant, and random nests.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import find_loop_nests
from repro.core import analyze_nest
from repro.explore import DesignSpace, evaluate, format_pareto
from repro.hw import ACEV_LIBRARY, exact_modulo_schedule, simulate_modulo, \
    squash_distances
from repro.hw.mii import default_edge_view
from repro.hw.schedulers import backtracking_modulo_schedule, \
    modulo_schedule
from repro.ir.randgen import random_squashable_nest
from repro.workloads import table_6_1_benchmarks

SCHEDULERS = ("modulo", "backtrack", "exact")
PIPELINED_VARIANTS = ("pipelined", "squash", "jam")


def _kernels():
    return tuple(bm.name for bm in table_6_1_benchmarks())


def _grouped(result):
    """(kernel, variant, ds, jam) -> {scheduler: DesignPoint}."""
    groups = {}
    for q, p in result.pairs():
        groups.setdefault((q.kernel, q.variant, q.ds, q.jam), {})[
            q.scheduler] = p
    return groups


def _oracle_space(factors, variants=PIPELINED_VARIANTS, jam_factors=(2,)):
    return DesignSpace(kernels=_kernels(), variants=variants,
                       factors=factors, jam_factors=jam_factors,
                       schedulers=SCHEDULERS)


@pytest.fixture(scope="module")
def oracle_result():
    space = _oracle_space(factors=(2, 4))
    return evaluate(space.enumerate(), jobs=None)


class TestOracle:
    def test_every_design_schedules_under_all_strategies(self, oracle_result):
        assert not oracle_result.skips(), \
            [(s.label, s.reason) for s in oracle_result.skips()]
        # 5 kernels x (pipelined + 2 squash + 2 jam) x 3 schedulers
        assert len(oracle_result.points()) == 5 * 5 * 3

    def test_heuristics_never_beat_exact(self, oracle_result):
        for key, by_sched in _grouped(oracle_result).items():
            exact = by_sched["exact"]
            for name in ("modulo", "backtrack"):
                assert by_sched[name].ii >= exact.ii, \
                    f"{key}: {name} II {by_sched[name].ii} beats " \
                    f"certified optimum {exact.ii}"

    def test_every_exact_point_is_certified(self, oracle_result):
        for (kernel, variant, ds, jam), by_sched in \
                _grouped(oracle_result).items():
            exact = by_sched["exact"]
            assert exact.exact_ii == exact.ii, \
                f"{kernel}/{variant}({ds}) fell back uncertified"

    def test_known_heuristic_gaps_stay_pinned(self, oracle_result):
        """The oracle's reason to exist: real suboptimality it caught."""
        groups = _grouped(oracle_result)
        des = groups[("des-mem", "pipelined", 1, 1)]
        assert des["exact"].ii == 16
        assert des["modulo"].ii == 19       # iterative IMS loses 3 cycles
        assert des["backtrack"].ii == 16    # slack orders recover them
        sq2 = groups[("des-mem", "squash", 2, 1)]
        assert (sq2["modulo"].ii, sq2["exact"].ii) == (10, 8)

    def test_gap_propagates_across_scheduler_axis(self, oracle_result):
        oracle_result.attach_exact_ii()
        groups = _grouped(oracle_result)
        des = groups[("des-mem", "pipelined", 1, 1)]
        assert des["modulo"].exact_ii == 16
        assert des["modulo"].optimality_gap == 3
        assert des["backtrack"].optimality_gap == 0
        assert des["backtrack"].certified_optimal

    def test_pareto_report_shows_gap_column(self, oracle_result):
        text = format_pareto(oracle_result)
        assert "gap" in text.splitlines()[2], \
            "gap column missing from the Pareto table header"

    def test_gap_propagates_across_target_spec_scheduler_modifier(self):
        # the scheduler can also ride in the target spec; that names the
        # same physical design, so the certified optimum must still flow
        from repro.explore import DesignQuery
        queries = [DesignQuery("des-mem", "pipelined",
                               target_spec="acev::scheduler=exact"),
                   DesignQuery("des-mem", "pipelined",
                               target_spec="acev")]
        result = evaluate(queries, jobs=1)
        result.attach_exact_ii()
        exact_pt, modulo_pt = result.results
        assert exact_pt.exact_ii == exact_pt.ii == 16
        assert modulo_pt.exact_ii == 16
        assert modulo_pt.optimality_gap == 3


class TestOracleReplay:
    """Re-derive a sample of schedules in-process and replay them
    through the fixed simulator with a window covering every distance."""

    @pytest.mark.parametrize("kernel", ["iir", "des-mem"])
    @pytest.mark.parametrize("ds", [1, 4])
    def test_schedules_replay_clean(self, kernel, ds):
        bm = next(b for b in table_6_1_benchmarks() if b.name == kernel)
        prog = bm.build(**bm.eval_kwargs)
        nest = find_loop_nests(prog)[0]
        _, _, _, dfg, sa, _ = analyze_nest(prog, nest, ds,
                                           delay_fn=ACEV_LIBRARY.delay)
        edges = squash_distances(dfg, sa) if ds > 1 else None
        view = edges or default_edge_view(dfg)
        exact = exact_modulo_schedule(dfg, ACEV_LIBRARY, edges=edges)
        for sched in (exact,
                      modulo_schedule(dfg, ACEV_LIBRARY, edges=edges),
                      backtracking_modulo_schedule(dfg, ACEV_LIBRARY,
                                                   edges=edges)):
            assert sched.ii >= exact.ii
            sim = simulate_modulo(dfg, ACEV_LIBRARY, sched, 12, edges=edges)
            assert sim.ok, sim.violations[:3]
            for s, d, dist in view:
                assert sched.time[d.nid] + sched.ii * dist >= \
                    sched.time[s.nid] + ACEV_LIBRARY.delay(s)

    @given(seed=st.integers(0, 2000), ds=st.sampled_from([1, 2, 4]))
    @settings(max_examples=15, deadline=None)
    def test_random_nests_exact_never_worse(self, seed, ds):
        prog, _ = random_squashable_nest(random.Random(seed))
        nest = find_loop_nests(prog)[0]
        _, _, _, dfg, sa, _ = analyze_nest(prog, nest, ds,
                                           delay_fn=ACEV_LIBRARY.delay)
        edges = squash_distances(dfg, sa) if ds > 1 else None
        exact = exact_modulo_schedule(dfg, ACEV_LIBRARY, edges=edges)
        assert exact.ii <= modulo_schedule(dfg, ACEV_LIBRARY,
                                           edges=edges).ii
        sim = simulate_modulo(dfg, ACEV_LIBRARY, exact, 8, edges=edges)
        assert sim.ok, sim.violations[:3]


class TestIncrementalSearchParity:
    """The incremental II search (shared preds/topo, memoized RecMII,
    skipped refuted candidates, reused exact certificates) must be
    observationally identical to the from-scratch search — same IIs,
    same start times, same certificates — across the whole oracle
    space and on direct scheduler calls."""

    def test_whole_suite_matches_from_scratch(self, monkeypatch):
        space = _oracle_space(factors=(2, 4))
        monkeypatch.setenv("REPRO_ANALYSIS_CACHE", "1")  # two-tier on
        incremental = evaluate(space.enumerate(), jobs=1)
        replay = evaluate(space.enumerate(), jobs=1)  # memo-warm replay
        monkeypatch.setenv("REPRO_ANALYSIS_CACHE", "0")  # memo fully off
        scratch = evaluate(space.enumerate(), jobs=1)
        assert incremental.results == scratch.results
        assert replay.results == scratch.results

    @pytest.mark.parametrize("kernel", ["iir", "des-mem"])
    @pytest.mark.parametrize("ds", [1, 2])
    def test_memo_replay_bit_identical_schedules(self, monkeypatch,
                                                 kernel, ds):
        from repro.hw import iimemo

        bm = next(b for b in table_6_1_benchmarks() if b.name == kernel)
        prog = bm.build(**bm.eval_kwargs)
        nest = find_loop_nests(prog)[0]
        _, _, _, dfg, sa, _ = analyze_nest(prog, nest, ds,
                                           delay_fn=ACEV_LIBRARY.delay)
        edges = squash_distances(dfg, sa) if ds > 1 else None

        monkeypatch.setenv("REPRO_ANALYSIS_CACHE", "0")
        scratch = {
            "modulo": modulo_schedule(dfg, ACEV_LIBRARY, edges=edges),
            "backtrack": backtracking_modulo_schedule(dfg, ACEV_LIBRARY,
                                                      edges=edges),
            "exact": exact_modulo_schedule(dfg, ACEV_LIBRARY, edges=edges),
        }

        monkeypatch.setenv("REPRO_ANALYSIS_CACHE", "mem")
        iimemo._MEMO.clear()
        for attempt in ("populate", "replay"):
            replay = {
                "modulo": modulo_schedule(dfg, ACEV_LIBRARY, edges=edges),
                "backtrack": backtracking_modulo_schedule(
                    dfg, ACEV_LIBRARY, edges=edges),
                "exact": exact_modulo_schedule(dfg, ACEV_LIBRARY,
                                               edges=edges),
            }
            for name, sched in replay.items():
                want = scratch[name]
                assert sched.ii == want.ii, (attempt, name)
                assert sched.time == want.time, (attempt, name)
                assert (sched.rec_mii, sched.res_mii) == \
                    (want.rec_mii, want.res_mii), (attempt, name)
                assert sched.length == want.length, (attempt, name)
            assert replay["exact"].certified == scratch["exact"].certified
            assert replay["exact"].failed == scratch["exact"].failed
        # the replay round must actually have used the memo
        assert iimemo._MEMO.hits > 0

    def test_memo_replays_schedule_failure_identically(self, monkeypatch):
        from repro.errors import ScheduleError
        from repro.hw import iimemo

        # cap the II search below des-mem's feasible range: the search
        # fails, and the failure (message included) must replay
        # identically through the memo
        bm = next(b for b in table_6_1_benchmarks() if b.name == "des-mem")
        prog = bm.build(**bm.eval_kwargs)
        nest = find_loop_nests(prog)[0]
        _, _, _, dfg, _, _ = analyze_nest(prog, nest, 1,
                                          delay_fn=ACEV_LIBRARY.delay)

        monkeypatch.setenv("REPRO_ANALYSIS_CACHE", "mem")
        iimemo._MEMO.clear()
        with pytest.raises(ScheduleError) as cold:
            modulo_schedule(dfg, ACEV_LIBRARY, max_ii=3)
        with pytest.raises(ScheduleError) as warm:
            modulo_schedule(dfg, ACEV_LIBRARY, max_ii=3)
        assert str(cold.value) == str(warm.value)
        assert iimemo._MEMO.hits > 0


@pytest.mark.slow
class TestExhaustiveOracle:
    """The full design space, including jam+squash and all factors —
    minutes of exact search, run as a separate non-blocking CI job."""

    @pytest.fixture(scope="class")
    def full_result(self):
        space = _oracle_space(
            factors=(2, 4, 8, 16),
            variants=("pipelined", "squash", "jam", "jam+squash"))
        return evaluate(space.enumerate(), jobs=None)

    def test_no_skips_and_full_coverage(self, full_result):
        assert not full_result.skips(), \
            [(s.label, s.reason) for s in full_result.skips()]
        # 5 kernels x (pipelined + 4 squash + 4 jam + 4 jam+squash) x 3
        assert len(full_result.points()) == 5 * 13 * 3

    def test_heuristics_never_beat_exact_anywhere(self, full_result):
        for key, by_sched in _grouped(full_result).items():
            exact = by_sched["exact"]
            assert exact.exact_ii == exact.ii, f"{key} uncertified"
            for name in ("modulo", "backtrack"):
                assert by_sched[name].ii >= exact.ii, key

    @given(seed=st.integers(0, 5000), ds=st.sampled_from([1, 2, 4, 8]))
    @settings(max_examples=60, deadline=None)
    def test_random_nests_wide_sweep(self, seed, ds):
        prog, _ = random_squashable_nest(random.Random(seed))
        nest = find_loop_nests(prog)[0]
        _, _, _, dfg, sa, _ = analyze_nest(prog, nest, ds,
                                           delay_fn=ACEV_LIBRARY.delay)
        edges = squash_distances(dfg, sa) if ds > 1 else None
        exact = exact_modulo_schedule(dfg, ACEV_LIBRARY, edges=edges)
        bt = backtracking_modulo_schedule(dfg, ACEV_LIBRARY, edges=edges)
        assert exact.ii <= bt.ii
        sim = simulate_modulo(dfg, ACEV_LIBRARY, exact, 10, edges=edges)
        assert sim.ok, sim.violations[:3]
