"""Unit tests for the exact (optimal) modulo scheduler.

Covers the constraint model (known-optimal IIs on the thesis figures),
the failed-II certificates, the budget / node-limit degradation to the
backtracking heuristic, and the optimality surface on
:class:`repro.hw.report.DesignPoint`.
"""

import pytest

from repro.analysis import find_loop_nests
from repro.core import analyze_nest
from repro.core.dfg import DFG
from repro.errors import ScheduleError
from repro.hw import (
    ACEV_LIBRARY, ExactSchedule, IICertificate, exact_modulo_schedule,
    modulo_schedule, simulate_modulo, squash_distances,
)
from repro.hw.exact import _decide_ii, _Budget
from repro.hw.mii import default_edge_view
from repro.hw.modulo import _delay_map
from repro.hw.schedulers import backtracking_modulo_schedule
from repro.ir.types import U32
from tests.conftest import build_fig21, build_fig41


def _dfg(prog, ds=1, lib=ACEV_LIBRARY):
    nest = find_loop_nests(prog)[0]
    _, _, _, dfg, sa, _ = analyze_nest(prog, nest, ds, delay_fn=lib.delay)
    return dfg, sa


def _assert_legal(dfg, lib, sched, edges=None):
    edges = edges if edges is not None else default_edge_view(dfg)
    for s, d, dist in edges:
        assert sched.time[d.nid] + sched.ii * dist >= \
            sched.time[s.nid] + lib.delay(s), f"{s} -> {d} (dist {dist})"
    rows: dict[int, int] = {}
    for n in dfg.nodes:
        if lib.uses_mem_port(n):
            r = sched.time[n.nid] % sched.ii
            rows[r] = rows.get(r, 0) + 1
            assert rows[r] <= lib.mem_ports


def _gap_dfg() -> tuple[DFG, "ACEV_LIBRARY.__class__"]:
    """Two loads on a distance-2 cycle, one memory port.

    RecMII = ceil(4/2) = 2 and ResMII = 2, but at II=2 the tight cycle
    forces both loads onto the same even residue — a port collision —
    so the true optimum is 3.  The minimal instance where the MII bound
    is unachievable and only the complete search can prove it.
    """
    g = DFG()
    m1 = g.add_node(kind="load", ty=U32, array="a")
    m2 = g.add_node(kind="load", ty=U32, array="a")
    g.add_edge(m1, m2, 0)
    g.add_edge(m2, m1, 2)
    return g, ACEV_LIBRARY.with_ports(1)


class TestKnownOptima:
    def test_fig21_certifies_recmii(self):
        dfg, _ = _dfg(build_fig21())
        sched = exact_modulo_schedule(dfg, ACEV_LIBRARY)
        assert isinstance(sched, ExactSchedule)
        assert sched.ii == 2 == sched.rec_mii
        assert sched.certified and sched.fallback is None
        _assert_legal(dfg, ACEV_LIBRARY, sched)

    def test_fig41_certifies_known_ii(self):
        dfg, _ = _dfg(build_fig41())
        sched = exact_modulo_schedule(dfg, ACEV_LIBRARY)
        assert sched.ii == 5 and sched.certified
        _assert_legal(dfg, ACEV_LIBRARY, sched)

    def test_squash_relaxed_edges_supported(self):
        dfg, sa = _dfg(build_fig41(), ds=4)
        edges = squash_distances(dfg, sa)
        sched = exact_modulo_schedule(dfg, ACEV_LIBRARY, edges=edges)
        assert sched.certified
        assert sched.ii <= modulo_schedule(dfg, ACEV_LIBRARY,
                                           edges=edges).ii
        _assert_legal(dfg, ACEV_LIBRARY, sched, edges)
        sim = simulate_modulo(dfg, ACEV_LIBRARY, sched, 12, edges=edges)
        assert sim.ok, sim.violations[:3]

    def test_memoryless_graph_needs_no_search(self):
        # fig21's kernel has no memory operations: the minimal solution
        # of the precedence system is the schedule, zero nodes explored
        dfg, _ = _dfg(build_fig21())
        sched = exact_modulo_schedule(dfg, ACEV_LIBRARY)
        assert sched.explored == 0 and sched.failed == ()


class TestGapInstance:
    """The hand-built instance where MII is provably unachievable."""

    def test_optimum_above_mii_with_certificate(self):
        dfg, lib = _gap_dfg()
        sched = exact_modulo_schedule(dfg, lib)
        assert sched.rec_mii == 2 and sched.res_mii == 2
        assert sched.ii == 3, "II=2 is infeasible, optimum is 3"
        assert sched.certified
        assert sched.failed == (
            IICertificate(ii=2, reason="search-exhausted",
                          explored=sched.failed[0].explored),)
        assert sched.failed[0].explored > 0
        _assert_legal(dfg, lib, sched)
        sim = simulate_modulo(dfg, lib, sched, 8)
        assert sim.ok, sim.violations[:3]

    def test_budget_exhaustion_degrades_to_backtrack(self):
        dfg, lib = _gap_dfg()
        sched = exact_modulo_schedule(dfg, lib, budget=0)
        bt = backtracking_modulo_schedule(dfg, lib)
        assert not sched.certified and sched.fallback == "backtrack"
        assert sched.ii == bt.ii and sched.time == bt.time
        _assert_legal(dfg, lib, sched)

    def test_node_limit_skips_search_entirely(self):
        dfg, lib = _gap_dfg()
        sched = exact_modulo_schedule(dfg, lib, node_limit=1)
        assert not sched.certified and sched.fallback == "backtrack"
        assert sched.explored == 0

    def test_env_budget_override(self, monkeypatch):
        dfg, lib = _gap_dfg()
        monkeypatch.setenv("REPRO_EXACT_BUDGET", "0")
        assert not exact_modulo_schedule(dfg, lib).certified
        monkeypatch.setenv("REPRO_EXACT_BUDGET", "100000")
        assert exact_modulo_schedule(dfg, lib).certified

    def test_heuristic_at_mii_certifies_for_free(self):
        # when the backtracking II meets max(RecMII, ResMII), the bound
        # itself is the optimality proof: no search even at budget 0
        dfg, _ = _dfg(build_fig21())
        sched = exact_modulo_schedule(dfg, ACEV_LIBRARY, budget=0)
        assert sched.certified and sched.ii == 2 and sched.explored == 0


class TestCertificateReasons:
    def test_recurrence_certificate_below_recmii(self):
        dfg, _ = _dfg(build_fig21())
        edges = default_edge_view(dfg)
        dmap = _delay_map(dfg, ACEV_LIBRARY)
        time, reason = _decide_ii(dfg, edges, ACEV_LIBRARY, 1, dmap,
                                  _Budget(10_000))
        assert time is None and reason == "recurrence"

    def test_resource_certificate_below_resmii(self):
        # two independent loads, one port: no recurrence, but II=1 has a
        # single MRT row for two references — refuted by pigeonhole
        g = DFG()
        g.add_node(kind="load", ty=U32, array="a")
        g.add_node(kind="load", ty=U32, array="b")
        lib = ACEV_LIBRARY.with_ports(1)
        edges = default_edge_view(g)
        dmap = _delay_map(g, lib)
        time, reason = _decide_ii(g, edges, lib, 1, dmap, _Budget(10_000))
        assert time is None and reason == "resource"

    def test_feasible_ii_recovers_schedule(self):
        dfg, lib = _gap_dfg()
        edges = default_edge_view(dfg)
        dmap = _delay_map(dfg, lib)
        time, reason = _decide_ii(dfg, edges, lib, 3, dmap, _Budget(10_000))
        assert reason == "" and time is not None
        for s, d, dist in edges:
            assert time[d.nid] + 3 * dist >= time[s.nid] + dmap[s.nid]


class TestRegistryIntegration:
    def test_exact_registered_and_pipelined(self):
        from repro.hw.schedulers import (
            available_schedulers, scheduler_by_name,
        )
        assert "exact" in available_schedulers()
        strategy = scheduler_by_name("exact")
        assert strategy.pipelined
        dfg, _ = _dfg(build_fig21())
        assert strategy.schedule(dfg, ACEV_LIBRARY).ii == 2

    def test_target_spec_modifier(self):
        from repro.nimble.target import decode_target
        assert decode_target("acev::scheduler=exact").scheduler == "exact"

    def test_design_query_accepts_exact(self):
        from repro.explore import DesignQuery
        q = DesignQuery("iir", "squash", ds=2, scheduler="exact")
        assert q.label == "squash(2)@exact"


class TestDesignPointOptimality:
    def test_pipeline_stamps_certified_exact_ii(self):
        from repro.analysis import find_kernel_nests
        from repro.nimble import compile_pipelined
        prog = build_fig41()
        nest = find_kernel_nests(prog)[0]
        point = compile_pipelined(prog, nest, scheduler="exact")
        assert point.exact_ii == point.ii == 5
        assert point.certified_optimal and point.optimality_gap == 0

    def test_mii_bound_certifies_without_exact(self):
        from repro.analysis import find_kernel_nests
        from repro.nimble import compile_pipelined
        prog = build_fig21()
        nest = find_kernel_nests(prog)[0]
        point = compile_pipelined(prog, nest)  # default heuristic
        assert point.exact_ii is None
        assert point.ii == point.min_ii == 2
        assert point.certified_optimal and point.optimality_gap == 0

    def test_unknown_gap_is_none_not_zero(self):
        from repro.hw.report import DesignPoint
        p = DesignPoint(kernel="k", variant="pipelined", factor=1, ii=7,
                        op_rows=1, registers=1, reg_rows=1.0,
                        rec_mii=2, res_mii=1, outer_trip=0, inner_trip=0)
        assert p.min_ii == 2
        assert p.optimality_gap is None and not p.certified_optimal
        p.exact_ii = 5
        assert p.optimality_gap == 2 and not p.certified_optimal
