"""Bit-identity of the numpy scheduler core vs the pure-Python reference.

``repro.hw.sched_kernel`` re-expresses the placement/probe/repair loops
over dense arrays; these tests pin the contract that the two cores are
*bit-identical* — same II, same per-node start cycles, same reservation
tables, same makespans — across seed-pinned random DFGs (``ir.randgen``
and ``lang.fuzz`` programs), both targets, all scheduler strategies, and
every crossing of the II-search memo (on/off) with the kernel (on/off).
"""

import random

import pytest

import repro
from repro.analysis import find_loop_nests
from repro.hw.schedulers import scheduler_by_name
from repro.ir.randgen import SquashNestSpec, ValueDomain, \
    random_squashable_nest
from repro.nimble.target import decode_target
from repro.pipeline import CompilationPipeline
from repro.pipeline.analysis import base_analyzed_dfg, squash_analyzed_dfg


@pytest.fixture(autouse=True)
def _fresh(monkeypatch):
    repro.clear_caches()
    monkeypatch.setenv("REPRO_ANALYSIS_CACHE", "mem")
    yield
    repro.clear_caches()


def _sched_record(s):
    if hasattr(s, "ii"):
        return {"ii": s.ii, "time": s.time, "rt": s.rt, "mrt": s.mrt,
                "length": s.length, "rec_mii": s.rec_mii,
                "res_mii": s.res_mii}
    return {"time": s.time, "length": s.length, "pu": s.port_usage,
            "ru": s.resource_usage}


def _random_nest(seed):
    rng = random.Random(seed)
    prog, outer = random_squashable_nest(rng, SquashNestSpec(), ValueDomain())
    nest = next(n for n in find_loop_nests(prog) if n.outer is outer)
    return prog, nest


def _schedule_under(monkeypatch, kernel_mode, analyzed, lib, sname):
    from repro.hw import sched_kernel

    monkeypatch.setenv("REPRO_SCHED_KERNEL", kernel_mode)
    repro.clear_caches()
    before = dict(sched_kernel.kernel_counters())
    sched = scheduler_by_name(sname).schedule(analyzed.dfg, lib,
                                              edges=analyzed.edges)
    after = sched_kernel.kernel_counters()
    used_numpy = after["sched_kernel_numpy_attempts"] \
        > before["sched_kernel_numpy_attempts"]
    return _sched_record(sched), used_numpy


class TestKernelParity:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("tspec", ["acev", "vliw4"])
    def test_randgen_schedules_identical(self, monkeypatch, seed, tspec):
        prog, nest = _random_nest(seed)
        lib = decode_target(tspec).library
        for variant_ds in (1, 2, 4):
            if variant_ds == 1:
                analyzed = base_analyzed_dfg(prog, nest)
            else:
                analyzed = squash_analyzed_dfg(prog, nest, variant_ds,
                                               delay_fn=lib.delay)
            for sname in ("list", "modulo", "backtrack"):
                py, py_np = _schedule_under(monkeypatch, "0", analyzed,
                                            lib, sname)
                nk, nk_np = _schedule_under(monkeypatch, "1", analyzed,
                                            lib, sname)
                assert py == nk, f"seed {seed} ds {variant_ds} {sname}"
                assert not py_np    # the knob really pinned the reference
                if sname != "list":
                    assert nk_np    # and the numpy core really ran

    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_fuzz_source_schedules_identical(self, monkeypatch, seed):
        from repro.analysis.loops import find_kernel_nests
        from repro.lang import compile_source
        from repro.lang.fuzz import SourceNestSpec, random_source_nest

        rng = random.Random(seed)
        text = random_source_nest(rng, SourceNestSpec.sample(rng))
        prog = compile_source(text, filename=f"<parity:{seed}>")
        nest = find_kernel_nests(prog)[0]
        for tspec in ("acev", "vliw4"):
            lib = decode_target(tspec).library
            analyzed = base_analyzed_dfg(prog, nest)
            for sname in ("modulo", "backtrack"):
                py, _ = _schedule_under(monkeypatch, "0", analyzed,
                                        lib, sname)
                nk, _ = _schedule_under(monkeypatch, "1", analyzed,
                                        lib, sname)
                assert py == nk, f"seed {seed} {tspec} {sname}"

    def test_design_points_identical(self, monkeypatch):
        from tests.conftest import build_fig41

        prog = build_fig41(m=16, n=8)
        nest = find_loop_nests(prog)[0]
        points = {}
        for mode in ("0", "1"):
            monkeypatch.setenv("REPRO_SCHED_KERNEL", mode)
            repro.clear_caches()
            pipe = CompilationPipeline(target=decode_target("vliw4"))
            points[mode] = [
                pipe.run(prog, nest, variant, ds=ds).point
                for variant, ds in (("original", 1), ("pipelined", 1),
                                    ("squash", 2), ("jam", 2))]
        assert points["0"] == points["1"]

    def test_memo_by_kernel_crossing_identical(self, monkeypatch):
        """2x2 sweep: II-memo (off/warm) x kernel (python/numpy).

        The memo signature deliberately excludes the kernel mode — a
        warm memo written by one core must replay bit-identically under
        the other — so all four crossings (plus the warm second run of
        each memo-on leg) must agree exactly.
        """
        prog, nest = _random_nest(99)
        lib = decode_target("vliw4").library
        analyzed = base_analyzed_dfg(prog, nest)
        records = []
        for cache_mode in ("0", "mem"):
            for kernel_mode in ("0", "1"):
                monkeypatch.setenv("REPRO_ANALYSIS_CACHE", cache_mode)
                monkeypatch.setenv("REPRO_SCHED_KERNEL", kernel_mode)
                repro.clear_caches()
                first = scheduler_by_name("backtrack").schedule(
                    analyzed.dfg, lib, edges=analyzed.edges)
                # second search: memo-warm when cache_mode enables it
                second = scheduler_by_name("backtrack").schedule(
                    analyzed.dfg, lib, edges=analyzed.edges)
                records.append(_sched_record(first))
                records.append(_sched_record(second))
        assert all(r == records[0] for r in records[1:])

    def test_counters_are_monotonic_ints(self):
        from repro.hw import sched_kernel

        c = sched_kernel.kernel_counters()
        assert set(c) == {"sched_kernel_numpy_attempts",
                          "sched_kernel_python_attempts"}
        assert all(isinstance(v, int) and v >= 0 for v in c.values())

    def test_kernel_mode_reports_knob(self, monkeypatch):
        from repro.hw import sched_kernel

        monkeypatch.setenv("REPRO_SCHED_KERNEL", "0")
        assert sched_kernel.kernel_mode() == "python"
        monkeypatch.setenv("REPRO_SCHED_KERNEL", "1")
        assert sched_kernel.kernel_mode() in ("numpy", "python")
