"""Unit + property tests for the schedulers, area model, and simulator."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import find_loop_nests
from repro.core import analyze_nest, unroll_and_squash
from repro.hw import (
    ACEV_LIBRARY, GARP_LIBRARY, area_estimate, list_schedule, min_ii,
    modulo_schedule, occupancy_timeline, operator_rows, registers_original,
    registers_pipelined, simulate_modulo, simulate_sequential,
    squash_distances,
)
from repro.hw.mii import default_edge_view
from repro.ir import U32, ProgramBuilder
from repro.ir.randgen import random_squashable_nest
from tests.conftest import build_fig21, build_fig41


def _dfg(prog, ds=1, lib=ACEV_LIBRARY):
    nest = find_loop_nests(prog)[0]
    _, _, _, dfg, sa, _ = analyze_nest(prog, nest, ds, delay_fn=lib.delay)
    return dfg, sa


def _assert_schedule_legal(dfg, lib, sched, edges=None):
    edges = edges if edges is not None else default_edge_view(dfg)
    for s, d, dist in edges:
        assert sched.time[d.nid] + sched.ii * dist >= \
            sched.time[s.nid] + lib.delay(s), f"{s} -> {d} (dist {dist})"
    rows: dict[int, int] = {}
    for n in dfg.nodes:
        if lib.uses_mem_port(n):
            r = sched.time[n.nid] % sched.ii
            rows[r] = rows.get(r, 0) + 1
            assert rows[r] <= lib.mem_ports


class TestModuloScheduler:
    def test_fig21_hits_recmii(self):
        dfg, _ = _dfg(build_fig21())
        sched = modulo_schedule(dfg, ACEV_LIBRARY)
        assert sched.ii == 2 == sched.rec_mii
        _assert_schedule_legal(dfg, ACEV_LIBRARY, sched)

    def test_fig41_hits_recmii(self):
        dfg, _ = _dfg(build_fig41())
        sched = modulo_schedule(dfg, ACEV_LIBRARY)
        assert sched.ii == 5
        _assert_schedule_legal(dfg, ACEV_LIBRARY, sched)

    def test_ii_at_least_min_ii(self):
        for builder in (build_fig21, build_fig41):
            dfg, _ = _dfg(builder())
            sched = modulo_schedule(dfg, ACEV_LIBRARY)
            assert sched.ii >= min_ii(dfg, ACEV_LIBRARY)

    def test_squash_relaxed_schedule(self):
        prog = build_fig41()
        for ds in (2, 4, 8):
            dfg, sa = _dfg(prog, ds=ds)
            edges = squash_distances(dfg, sa)
            sched = modulo_schedule(dfg, ACEV_LIBRARY, edges=edges)
            _assert_schedule_legal(dfg, ACEV_LIBRARY, sched, edges)
            assert sched.ii <= -(-5 // ds) + 1

    def test_memory_congestion_raises_ii(self):
        # 4 loads + 1 store per iteration on a 2-port bus -> ResMII 3
        b = ProgramBuilder("p")
        src = b.array("src", (64,), U32)
        out = b.array("out", (64,), U32, output=True)
        x = b.local("x", U32)
        with b.loop("i", 0, 8) as i:
            b.assign(x, 0)
            with b.loop("j", 0, 4) as j:
                b.assign(x, b.var("x")
                         + src[(i + j) & 63] + src[(i + j + 1) & 63]
                         + src[(i + j + 2) & 63] + src[(i + j + 3) & 63])
                out[(i * 4 + j) & 63] = b.var("x")
        dfg, _ = _dfg(b.build())
        sched = modulo_schedule(dfg, ACEV_LIBRARY)
        assert sched.res_mii == 3
        assert sched.ii >= 3
        _assert_schedule_legal(dfg, ACEV_LIBRARY, sched)
        sched1 = modulo_schedule(dfg, GARP_LIBRARY)
        assert sched1.ii >= 5

    @given(seed=st.integers(0, 2000), ds=st.sampled_from([1, 2, 4]))
    @settings(max_examples=40, deadline=None)
    def test_random_nests_schedulable(self, seed, ds):
        prog, _ = random_squashable_nest(random.Random(seed))
        nest = find_loop_nests(prog)[0]
        _, _, _, dfg, sa, _ = analyze_nest(prog, nest, ds,
                                           delay_fn=ACEV_LIBRARY.delay)
        edges = squash_distances(dfg, sa) if ds > 1 else None
        sched = modulo_schedule(dfg, ACEV_LIBRARY, edges=edges)
        _assert_schedule_legal(dfg, ACEV_LIBRARY, sched,
                               edges or default_edge_view(dfg))
        sim = simulate_modulo(dfg, ACEV_LIBRARY, sched, 5, edges=edges)
        assert sim.ok, sim.violations[:3]


class TestMRTRowAdvance:
    """Regression for the MRT probe loop in ``_attempt``: a fully
    occupied row must advance the operation to the next free row (the
    dead duplicate re-probe after the loop was removed)."""

    def _mem_heavy(self, loads: int):
        b = ProgramBuilder("memheavy")
        src = b.array("src", (64,), U32)
        out = b.array("out", (64,), U32, output=True)
        x = b.local("x", U32)
        with b.loop("i", 0, 8) as i:
            b.assign(x, 0)
            with b.loop("j", 0, 4) as j:
                for k in range(loads):
                    b.assign(x, b.var("x") + src[(i + j + k) & 63])
                out[(i * 4 + j) & 63] = b.var("x")
        dfg, _ = _dfg(b.build())
        return dfg

    def test_attempt_advances_past_full_row(self):
        from repro.hw.mii import default_edge_view
        from repro.hw.modulo import _attempt

        dfg = self._mem_heavy(4)   # 4 loads + 1 store on a 2-port bus
        edges = default_edge_view(dfg)
        sched = _attempt(dfg, edges, ACEV_LIBRARY, 3, {})
        assert sched is not None
        # every row within capacity; at least one op pushed off row 0
        assert all(v <= ACEV_LIBRARY.mem_ports for v in sched.mrt.values())
        assert sum(sched.mrt.values()) == 5
        mem_rows = {sched.time[n.nid] % 3 for n in dfg.nodes
                    if ACEV_LIBRARY.uses_mem_port(n)}
        assert len(mem_rows) > 1

    def test_attempt_gives_up_when_all_rows_full(self):
        from repro.hw.mii import default_edge_view
        from repro.hw.modulo import _attempt

        dfg = self._mem_heavy(4)   # 5 memory refs > 2 rows * 2 ports
        edges = default_edge_view(dfg)
        assert _attempt(dfg, edges, ACEV_LIBRARY, 2, {}) is None

    def test_full_search_lands_on_feasible_ii(self):
        dfg = self._mem_heavy(4)
        sched = modulo_schedule(dfg, ACEV_LIBRARY)
        assert sched.ii >= sched.res_mii == 3
        _assert_schedule_legal(dfg, ACEV_LIBRARY, sched)


class TestBacktrackingScheduler:
    def test_matches_iterative_on_thesis_figures(self):
        from repro.hw.schedulers import backtracking_modulo_schedule
        for builder in (build_fig21, build_fig41):
            dfg, _ = _dfg(builder())
            ims = modulo_schedule(dfg, ACEV_LIBRARY)
            bt = backtracking_modulo_schedule(dfg, ACEV_LIBRARY)
            assert bt.ii <= ims.ii
            _assert_schedule_legal(dfg, ACEV_LIBRARY, bt)

    def test_squash_edges_supported(self):
        from repro.hw.schedulers import backtracking_modulo_schedule
        dfg, sa = _dfg(build_fig41(), ds=4)
        edges = squash_distances(dfg, sa)
        bt = backtracking_modulo_schedule(dfg, ACEV_LIBRARY, edges=edges)
        _assert_schedule_legal(dfg, ACEV_LIBRARY, bt, edges)

    @given(seed=st.integers(0, 2000), ds=st.sampled_from([1, 2, 4]))
    @settings(max_examples=25, deadline=None)
    def test_random_nests_never_worse_than_iterative(self, seed, ds):
        from repro.hw.schedulers import backtracking_modulo_schedule
        prog, _ = random_squashable_nest(random.Random(seed))
        nest = find_loop_nests(prog)[0]
        _, _, _, dfg, sa, _ = analyze_nest(prog, nest, ds,
                                           delay_fn=ACEV_LIBRARY.delay)
        edges = squash_distances(dfg, sa) if ds > 1 else None
        ims = modulo_schedule(dfg, ACEV_LIBRARY, edges=edges)
        bt = backtracking_modulo_schedule(dfg, ACEV_LIBRARY, edges=edges)
        assert bt.ii <= ims.ii
        _assert_schedule_legal(dfg, ACEV_LIBRARY, bt,
                               edges or default_edge_view(dfg))
        sim = simulate_modulo(dfg, ACEV_LIBRARY, bt, 5, edges=edges)
        assert sim.ok, sim.violations[:3]

    def test_mii_bounds_reported(self):
        from repro.hw.schedulers import backtracking_modulo_schedule
        dfg, _ = _dfg(build_fig41())
        bt = backtracking_modulo_schedule(dfg, ACEV_LIBRARY)
        ims = modulo_schedule(dfg, ACEV_LIBRARY)
        assert (bt.rec_mii, bt.res_mii) == (ims.rec_mii, ims.res_mii)


class TestSchedulerRegistry:
    def test_builtins_registered(self):
        from repro.hw.schedulers import available_schedulers
        names = available_schedulers()
        assert {"list", "modulo", "backtrack"} <= set(names)

    def test_empty_name_resolves_default(self):
        from repro.hw.schedulers import scheduler_by_name
        assert scheduler_by_name("").name == "modulo"
        assert scheduler_by_name("modulo").pipelined
        assert not scheduler_by_name("list").pipelined

    def test_unknown_name_raises(self):
        from repro.hw.schedulers import scheduler_by_name
        with pytest.raises(KeyError, match="unknown scheduler"):
            scheduler_by_name("simulated-annealing")

    def test_duplicate_registration_rejected(self):
        from repro.hw.schedulers import (
            IterativeModuloScheduler, register_scheduler,
        )
        with pytest.raises(ValueError, match="already registered"):
            register_scheduler(IterativeModuloScheduler())

    def test_custom_scheduler_pluggable(self):
        from repro.hw.schedulers import (
            _REGISTRY, Scheduler, register_scheduler, scheduler_by_name,
        )

        class EagerModulo:
            name = "eager"
            pipelined = True

            def schedule(self, dfg, lib, edges=None, max_ii=None):
                return modulo_schedule(dfg, lib, edges=edges, max_ii=max_ii)

        register_scheduler(EagerModulo())
        try:
            strategy = scheduler_by_name("eager")
            assert isinstance(strategy, Scheduler)
            dfg, _ = _dfg(build_fig21())
            assert strategy.schedule(dfg, ACEV_LIBRARY).ii == 2
        finally:
            _REGISTRY.pop("eager", None)


class TestListScheduler:
    def test_length_at_least_critical_path(self):
        dfg, _ = _dfg(build_fig41())
        sched = list_schedule(dfg, ACEV_LIBRARY)
        assert sched.length >= 5

    def test_ports_respected(self):
        dfg, _ = _dfg(build_fig21())
        sched = list_schedule(dfg, ACEV_LIBRARY)
        assert all(v <= ACEV_LIBRARY.mem_ports
                   for v in sched.port_usage.values())

    def test_original_slower_than_pipelined(self):
        dfg, _ = _dfg(build_fig41())
        orig = list_schedule(dfg, ACEV_LIBRARY)
        pipe = modulo_schedule(dfg, ACEV_LIBRARY)
        assert pipe.ii <= orig.length


class TestAreaModel:
    def test_operator_rows_positive(self):
        dfg, _ = _dfg(build_fig41())
        assert operator_rows(dfg, ACEV_LIBRARY) > 0

    def test_registers_original_counts_liveins(self):
        dfg, _ = _dfg(build_fig41())
        # live-ins: a, i, k, j
        assert registers_original(dfg) == 4

    def test_registers_pipelined_at_least_original(self):
        dfg, _ = _dfg(build_fig41())
        sched = modulo_schedule(dfg, ACEV_LIBRARY)
        assert registers_pipelined(dfg, ACEV_LIBRARY, sched) >= \
            registers_original(dfg)

    def test_area_estimate_fractions(self):
        dfg, _ = _dfg(build_fig41())
        est = area_estimate(dfg, ACEV_LIBRARY, registers=10)
        assert est.total_rows == est.op_rows + 10
        assert 0 < est.operator_fraction < 1

    def test_packed_registers_cheaper(self):
        dfg, _ = _dfg(build_fig41())
        packed = ACEV_LIBRARY.with_packed_registers(0.25)
        a = area_estimate(dfg, ACEV_LIBRARY, 40).total_rows
        b = area_estimate(dfg, packed, 40).total_rows
        assert b < a


class TestSimulator:
    def test_total_cycles_formula(self):
        dfg, _ = _dfg(build_fig21())
        sched = modulo_schedule(dfg, ACEV_LIBRARY)
        sim = simulate_modulo(dfg, ACEV_LIBRARY, sched, 10)
        assert sim.total_cycles == 9 * sched.ii + sched.length

    def test_sequential_cycles(self):
        dfg, _ = _dfg(build_fig21())
        sched = list_schedule(dfg, ACEV_LIBRARY)
        sim = simulate_sequential(dfg, ACEV_LIBRARY, sched, 10)
        assert sim.total_cycles == 10 * sched.length

    def test_occupancy_timeline_shape(self):
        dfg, sa = _dfg(build_fig21(), ds=2)
        edges = squash_distances(dfg, sa)
        sched = modulo_schedule(dfg, ACEV_LIBRARY, edges=edges)
        tl = occupancy_timeline(dfg, ACEV_LIBRARY, sched, iterations=6,
                                horizon=12)
        assert all(len(v) == 12 for v in tl.values())
        # squash keeps operators busy: few idle slots in steady state
        busy = sum(1 for v in tl.values() for c in v[2:8] if c >= 0)
        assert busy > 0
