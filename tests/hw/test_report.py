"""Unit tests for DesignPoint arithmetic and normalization (Table 6.3 math)."""

import pytest

from repro.hw.report import DesignPoint, normalize


def _point(variant, factor, ii, op_rows=40, registers=10, m=32, n=16,
           base_ii=None, squash_ds=None):
    return DesignPoint(
        kernel="k", variant=variant, factor=factor, ii=ii, op_rows=op_rows,
        registers=registers, reg_rows=1.0, rec_mii=1, res_mii=1,
        outer_trip=m, inner_trip=n, base_ii=base_ii, squash_ds=squash_ds)


class TestTotalCycles:
    def test_original(self):
        p = _point("original", 1, ii=20)
        assert p.total_cycles == 20 * 32 * 16

    def test_pipelined(self):
        p = _point("pipelined", 1, ii=5)
        assert p.total_cycles == 5 * 32 * 16

    def test_squash_formula(self):
        # §4.4: II * (M/DS) * (DS*N - (DS-1))
        p = _point("squash", 4, ii=5)
        assert p.total_cycles == 5 * 8 * (4 * 16 - 3)

    def test_jam_formula(self):
        p = _point("jam", 4, ii=8)
        assert p.total_cycles == 8 * 8 * 16

    def test_peeled_remainder_costed_at_base_ii(self):
        p = _point("jam", 4, ii=8, m=30, base_ii=20)
        tiles = 30 // 4
        assert p.total_cycles == 8 * tiles * 16 + 2 * 16 * 20

    def test_jam_squash_formula(self):
        p = _point("jam+squash", 4, ii=3, squash_ds=2)
        # tiles of 4 original iterations; squash part DS=2 over N=16
        assert p.total_cycles == 3 * 8 * (2 * 16 - 1)

    def test_unknown_variant_rejected(self):
        p = _point("bogus", 2, ii=1)
        with pytest.raises(ValueError):
            p.total_cycles

    def test_label(self):
        assert _point("original", 1, 1).label == "original"
        assert _point("squash", 8, 1).label == "squash(8)"

    def test_area_rows_includes_register_cost(self):
        p = _point("original", 1, 1, op_rows=40, registers=10)
        assert p.area_rows == 50
        p.reg_rows = 0.25
        assert p.area_rows == 42.5


class TestNormalize:
    def test_base_is_unity(self):
        base = _point("original", 1, ii=20)
        n = normalize(base, base)
        assert n.speedup == 1.0 and n.area_factor == 1.0
        assert n.register_factor == 1.0 and n.efficiency == 1.0

    def test_speedup_ratio(self):
        base = _point("original", 1, ii=20)
        fast = _point("pipelined", 1, ii=5)
        assert normalize(base, fast).speedup == pytest.approx(4.0)

    def test_efficiency_is_speedup_per_area(self):
        base = _point("original", 1, ii=20, op_rows=40, registers=10)
        v = _point("jam", 2, ii=20, op_rows=80, registers=20)
        n = normalize(base, v)
        assert n.speedup == pytest.approx(2.0)
        assert n.area_factor == pytest.approx(2.0)
        assert n.efficiency == pytest.approx(1.0)

    def test_operator_fraction(self):
        v = _point("squash", 4, ii=5, op_rows=40, registers=40)
        n = normalize(_point("original", 1, ii=20), v)
        assert n.operator_fraction == pytest.approx(0.5)
