"""The simulator as a schedule *checker* (ISSUE satellites).

Regression for the cross-iteration dependence window — the old code
checked ``range(min(iterations, 4))`` and skipped every pairing past
the replayed iterations, so distance > 4 edges and short replays were
never validated — plus property tests that corrupting one slot of a
valid modulo schedule (precedence break or port collision) is always
caught.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import find_loop_nests
from repro.core import analyze_nest
from repro.core.dfg import DFG
from repro.hw import ACEV_LIBRARY, modulo_schedule, simulate_modulo, \
    squash_distances
from repro.hw.mii import default_edge_view
from repro.hw.modulo import ModuloSchedule
from repro.ir.randgen import random_squashable_nest
from repro.ir.types import U32
from tests.conftest import build_fig21, build_fig41


def _copy(sched: ModuloSchedule) -> ModuloSchedule:
    return ModuloSchedule(ii=sched.ii, time=dict(sched.time),
                          rec_mii=sched.rec_mii, res_mii=sched.res_mii,
                          mrt=dict(sched.mrt), length=sched.length)


class TestDependenceWindowRegression:
    def _distance5_violation(self):
        """A div (delay 8) feeding a register over a distance-5 backedge
        scheduled at II=1: ``t(reg) + 5*II < t(div) + 8`` — violated."""
        g = DFG()
        reg = g.add_node(kind="reg", ty=U32, name="x")
        op = g.add_node(kind="binop", ty=U32, op="div", name="x1")
        g.add_edge(reg, op, 0)
        g.add_edge(op, reg, 5)
        sched = ModuloSchedule(ii=1, time={reg.nid: 0, op.nid: 0},
                               rec_mii=2, res_mii=1, length=8)
        return g, sched

    def test_short_replay_no_longer_masks_distant_violation(self):
        g, sched = self._distance5_violation()
        # iterations=3 < distance 5: the old guard skipped every pairing
        sim = simulate_modulo(g, ACEV_LIBRARY, sched, 3)
        assert not sim.ok
        assert "dist 5" in sim.violations[0]

    def test_default_validate_iters_catch_it_too(self):
        g, sched = self._distance5_violation()
        from repro.pipeline.pipeline import VALIDATE_ITERS
        sim = simulate_modulo(g, ACEV_LIBRARY, sched, VALIDATE_ITERS)
        assert not sim.ok

    def test_squash8_distances_are_exercised(self):
        # squash(8) stretches backedges to distance 8 — beyond the old
        # 4-iteration window; a legal schedule must still verify clean
        prog = build_fig41()
        nest = find_loop_nests(prog)[0]
        _, _, _, dfg, sa, _ = analyze_nest(prog, nest, 8,
                                           delay_fn=ACEV_LIBRARY.delay)
        edges = squash_distances(dfg, sa)
        assert max(d for _, _, d in edges) >= 8
        sched = modulo_schedule(dfg, ACEV_LIBRARY, edges=edges)
        assert simulate_modulo(dfg, ACEV_LIBRARY, sched, 6, edges=edges).ok
        # now corrupt the sink of the longest edge: must be caught even
        # though the replay is far shorter than the distance
        s, d, dist = max(edges, key=lambda e: e[2])
        bad = _copy(sched)
        bad.time[d.nid] = sched.time[s.nid] + ACEV_LIBRARY.delay(s) \
            - sched.ii * dist - 1
        sim = simulate_modulo(dfg, ACEV_LIBRARY, bad, 6, edges=edges)
        assert not sim.ok and f"dist {dist}" in sim.violations[0]


class TestMutationAlwaysCaught:
    """Property: one corrupted slot of a valid schedule => ``ok`` False."""

    @given(seed=st.integers(0, 2000), ds=st.sampled_from([1, 2, 4]),
           pick=st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_precedence_break_detected(self, seed, ds, pick):
        prog, _ = random_squashable_nest(random.Random(seed))
        nest = find_loop_nests(prog)[0]
        _, _, _, dfg, sa, _ = analyze_nest(prog, nest, ds,
                                           delay_fn=ACEV_LIBRARY.delay)
        edges = squash_distances(dfg, sa) if ds > 1 else \
            default_edge_view(dfg)
        sched = modulo_schedule(dfg, ACEV_LIBRARY,
                                edges=edges if ds > 1 else None)
        assert simulate_modulo(dfg, ACEV_LIBRARY, sched, 6,
                               edges=edges).ok
        # corrupt one edge's sink so the dependence is missed by 1 cycle
        candidates = [e for e in edges if ACEV_LIBRARY.delay(e[0]) > 0]
        if not candidates:
            return  # nothing corruptible in this draw
        s, d, dist = candidates[pick % len(candidates)]
        bad = _copy(sched)
        bad.time[d.nid] = sched.time[s.nid] + ACEV_LIBRARY.delay(s) \
            - sched.ii * dist - 1
        sim = simulate_modulo(dfg, ACEV_LIBRARY, bad, 6, edges=edges)
        assert not sim.ok

    def test_port_collision_detected(self):
        # one port: piling a second memory ref onto an occupied MRT row
        # must oversubscribe the bus in the replay
        lib = ACEV_LIBRARY.with_ports(1)
        g = DFG()
        a = g.add_node(kind="load", ty=U32, array="a")
        b = g.add_node(kind="load", ty=U32, array="b")
        sched = ModuloSchedule(ii=2, time={a.nid: 0, b.nid: 1},
                               rec_mii=1, res_mii=2, length=3)
        assert simulate_modulo(g, lib, sched, 6).ok
        bad = _copy(sched)
        bad.time[b.nid] = 2  # same row (2 mod 2 == 0) as the first load
        sim = simulate_modulo(g, lib, bad, 6)
        assert not sim.ok
        assert any("ports" in v for v in sim.violations)

    @given(seed=st.integers(0, 500))
    @settings(max_examples=15, deadline=None)
    def test_collision_mutation_on_memory_kernel(self, seed):
        from repro.ir import ProgramBuilder
        b = ProgramBuilder("memheavy")
        src = b.array("src", (64,), U32)
        out = b.array("out", (64,), U32, output=True)
        x = b.local("x", U32)
        with b.loop("i", 0, 8) as i:
            b.assign(x, 0)
            with b.loop("j", 0, 4) as j:
                b.assign(x, b.var("x") + src[(i + j) & 63]
                         + src[(i + j + 1) & 63])
                out[(i * 4 + j) & 63] = b.var("x")
        prog = b.build()
        nest = find_loop_nests(prog)[0]
        _, _, _, dfg, _, _ = analyze_nest(prog, nest, 1,
                                          delay_fn=ACEV_LIBRARY.delay)
        lib = ACEV_LIBRARY.with_ports(1)
        mem = [n for n in dfg.nodes if lib.uses_mem_port(n)]
        assert len(mem) >= 3
        sched = modulo_schedule(dfg, lib)
        assert simulate_modulo(dfg, lib, sched, 6).ok
        rng = random.Random(seed)
        m1, m2 = rng.sample(mem, 2)
        bad = _copy(sched)
        bad.time[m2.nid] = bad.time[m1.nid]  # force a shared row
        sim = simulate_modulo(dfg, lib, bad, 6)
        assert not sim.ok
