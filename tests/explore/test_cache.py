"""Persistent result cache: hit/miss across simulated runs, isolation."""

from repro.explore import (
    DesignQuery, NullCache, ResultCache, SkipRecord, code_version,
)
from repro.hw.report import DesignPoint


def _point(kernel="iir", variant="squash", factor=2, ii=7) -> DesignPoint:
    return DesignPoint(kernel=kernel, variant=variant, factor=factor,
                       ii=ii, op_rows=100, registers=20, reg_rows=1.0,
                       rec_mii=2, res_mii=1, outer_trip=16, inner_trip=64,
                       schedule_length=9)


class TestResultCache:
    def test_miss_then_hit_across_instances(self, tmp_path):
        q = DesignQuery("iir", "squash", ds=2)
        first = ResultCache(tmp_path)
        assert first.get(q) is None
        first.put(q, _point())
        assert first.stats.misses == 1 and first.stats.stores == 1

        # a "second run": fresh instance over the same directory
        second = ResultCache(tmp_path)
        got = second.get(q)
        assert isinstance(got, DesignPoint) and got == _point()
        assert second.stats.hits == 1 and second.stats.misses == 0
        assert second.stats.hit_rate == 1.0

    def test_get_returns_fresh_objects(self, tmp_path):
        q = DesignQuery("iir", "squash", ds=2)
        cache = ResultCache(tmp_path)
        cache.put(q, _point())
        a, b = cache.get(q), cache.get(q)
        assert a == b and a is not b
        a.base_ii = 999  # mutating a hit must not corrupt the store
        assert cache.get(q).base_ii is None

    def test_skip_records_roundtrip(self, tmp_path):
        q = DesignQuery("wavelet", "squash", ds=4)
        cache = ResultCache(tmp_path)
        cache.put(q, SkipRecord(q, "legality", "rejected"))
        got = ResultCache(tmp_path).get(q)
        assert isinstance(got, SkipRecord)
        assert got.phase == "legality" and got.query == q

    def test_version_partitions_results(self, tmp_path):
        q = DesignQuery("iir", "squash", ds=2)
        ResultCache(tmp_path, version="aaa").put(q, _point())
        assert ResultCache(tmp_path, version="bbb").get(q) is None
        assert ResultCache(tmp_path, version="aaa").get(q) is not None

    def test_clear_drops_every_version(self, tmp_path):
        q = DesignQuery("iir", "squash", ds=2)
        for ver in ("aaa", "bbb"):
            ResultCache(tmp_path, version=ver).put(q, _point())
        cache = ResultCache(tmp_path, version="aaa")
        cache.clear()
        assert cache.get(q) is None
        assert ResultCache(tmp_path, version="bbb").get(q) is None

    def test_tolerates_torn_writes(self, tmp_path):
        q = DesignQuery("iir", "squash", ds=2)
        cache = ResultCache(tmp_path)
        cache.put(q, _point())
        with cache.path.open("a") as fh:
            fh.write('{"hash": "truncated...')  # crash mid-append
        reread = ResultCache(tmp_path)
        assert reread.get(q) == _point()

    def test_put_is_idempotent(self, tmp_path):
        q = DesignQuery("iir", "squash", ds=2)
        cache = ResultCache(tmp_path)
        cache.put(q, _point())
        cache.put(q, _point())
        assert cache.stats.stores == 1
        assert len(ResultCache(tmp_path)) == 1

    def test_code_version_is_stable_and_short(self):
        assert code_version() == code_version()
        assert len(code_version()) == 12


class TestNullCache:
    def test_never_hits(self):
        q = DesignQuery("iir", "squash", ds=2)
        cache = NullCache()
        cache.put(q, _point())
        assert cache.get(q) is None
        assert cache.stats.misses == 1 and cache.stats.stores == 0


class TestForeignRecordTolerance:
    """Records from an older/newer ``DesignPoint``/``DesignQuery`` field
    set (possible under a custom ``REPRO_CACHE_DIR`` or a pinned
    ``version=``) must decode as misses, not crash the sweep."""

    def _tamper(self, cache, mutate):
        import json
        lines = cache.path.read_text().splitlines()
        rec = json.loads(lines[0])
        mutate(rec)
        cache.path.write_text(json.dumps(rec) + "\n")

    def test_record_from_the_future_is_a_miss(self, tmp_path):
        q = DesignQuery("iir", "squash", ds=2)
        cache = ResultCache(tmp_path)
        cache.put(q, _point())
        self._tamper(cache, lambda r: r["data"].update(hologram_rows=9))
        reread = ResultCache(tmp_path)
        assert reread.get(q) is None
        assert reread.stats.misses == 1 and reread.stats.hits == 0

    def test_record_missing_required_field_is_a_miss(self, tmp_path):
        q = DesignQuery("iir", "squash", ds=2)
        cache = ResultCache(tmp_path)
        cache.put(q, _point())
        self._tamper(cache, lambda r: r["data"].pop("ii"))
        assert ResultCache(tmp_path).get(q) is None

    def test_record_with_unknown_scheduler_is_a_miss(self, tmp_path):
        q = DesignQuery("iir", "squash", ds=2)
        cache = ResultCache(tmp_path)
        cache.put(q, _point())
        self._tamper(cache,
                     lambda r: r["query"].update(scheduler="quantum"))
        assert ResultCache(tmp_path).get(q) is None

    def test_malformed_structure_is_a_miss(self, tmp_path):
        q = DesignQuery("iir", "squash", ds=2)
        cache = ResultCache(tmp_path)
        cache.put(q, _point())
        self._tamper(cache, lambda r: r.pop("kind"))
        assert ResultCache(tmp_path).get(q) is None

    def test_miss_recomputes_and_moves_on(self, tmp_path):
        # the whole point: a foreign record must not poison evaluate()
        from repro.explore import evaluate
        q = DesignQuery("iir", "pipelined")
        cache = ResultCache(tmp_path)
        cache.put(q, _point(variant="pipelined", factor=1))
        self._tamper(cache, lambda r: r["data"].update(alien=True))
        result = evaluate([q], jobs=1, cache=ResultCache(tmp_path))
        assert len(result.points()) == 1
        assert result.cache_stats.misses == 1


class TestCodeVersionClearHook:
    def test_reset_is_registered_with_clear_caches(self):
        from repro.caches import _CLEARERS
        from repro.explore.cache import _reset_code_version
        assert _reset_code_version in _CLEARERS

    def test_reset_drops_the_memo(self):
        from repro.explore import cache as cache_mod
        from repro.explore.cache import _reset_code_version
        first = code_version()
        assert cache_mod._code_version == first
        _reset_code_version()
        assert cache_mod._code_version is None
        assert code_version() == first  # recomputed, same sources

    def test_clear_caches_recomputes_from_disk(self):
        # clear_caches ends by clearing the persistent store, whose
        # constructor re-reads the source tree — so after the hook the
        # memo is *fresh*, never the value cached before the clear
        import repro
        from repro.explore import cache as cache_mod
        first = code_version()
        repro.clear_caches()
        assert cache_mod._code_version == first  # same sources on disk
