"""Concurrency: two processes sweeping one ``.repro_cache/`` at once.

The persistent result cache and the artifact stores are shared,
append-on-publish structures; simultaneous sweeps must never corrupt
them (torn JSON lines, partial pickles) and every process must end up
with the full, correct result set.
"""

import json
import multiprocessing
import pickle

import pytest

from repro.explore import DesignSpace, ResultCache, evaluate
from repro.hw.report import DesignPoint
from repro.store import ArtifactStore

SPACE = DesignSpace(kernels=("iir",), factors=(2, 4))


def _sweep_worker(cache_dir, out_queue):
    from repro.explore import ResultCache, evaluate
    result = evaluate(SPACE.enumerate(), jobs=1,
                      cache=ResultCache(cache_dir))
    out_queue.put([(type(r).__name__, getattr(r, "ii", None))
                   for r in result.results])


def _store_worker(directory, key, payload, rounds):
    from repro.store import ArtifactStore
    store = ArtifactStore("analysis", directory)
    for _ in range(rounds):
        store.put(key, payload)
        got = store.get(key)
        assert got is None or got == payload  # never a torn read


class TestConcurrentResultCache:
    def test_two_processes_same_cache_dir(self, tmp_path):
        """Both sweeps finish, agree, and leave a readable store."""
        ctx = multiprocessing.get_context("fork")
        queue = ctx.Queue()
        procs = [ctx.Process(target=_sweep_worker, args=(tmp_path, queue))
                 for _ in range(2)]
        for p in procs:
            p.start()
        outcomes = [queue.get(timeout=120) for _ in procs]
        for p in procs:
            p.join(timeout=120)
            assert p.exitcode == 0
        assert outcomes[0] == outcomes[1]

        # the store must replay cleanly in a third reader, and every
        # line must be valid JSON (no interleaved torn writes)
        cache = ResultCache(tmp_path)
        warm = evaluate(SPACE.enumerate(), jobs=1, cache=cache)
        assert warm.cache_stats.hit_rate == 1.0
        assert all(isinstance(r, DesignPoint) for r in warm.results)
        for path in tmp_path.glob("results-*.jsonl"):
            for line in path.read_text().splitlines():
                json.loads(line)

    def test_interleaved_writers_one_process(self, tmp_path):
        """Two cache instances over one file interleave without loss."""
        a, b = ResultCache(tmp_path), ResultCache(tmp_path)
        queries = SPACE.enumerate()
        evaluate(queries[:2], jobs=1, cache=a)
        rb = evaluate(queries, jobs=1, cache=b)
        # b's index loads lazily, so it serves a's two earlier records
        assert rb.cache_stats.hits == 2
        assert rb.cache_stats.misses == len(queries) - 2
        fresh = ResultCache(tmp_path)
        assert len(fresh) == len(queries)
        assert [fresh.get(q) for q in queries] == rb.results


class TestConcurrentArtifactStore:
    def test_parallel_put_get_same_key(self, tmp_path):
        payload = {"blob": list(range(500)), "tag": "x" * 100}
        ctx = multiprocessing.get_context("fork")
        procs = [ctx.Process(target=_store_worker,
                             args=(tmp_path, "hot-key", payload, 20))
                 for _ in range(3)]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
            assert p.exitcode == 0
        assert ArtifactStore("analysis", tmp_path).get("hot-key") == payload

    def test_torn_publish_is_a_miss(self, tmp_path, monkeypatch):
        # injected, not hand-crafted: the store's own publish path tears
        # the pickle mid-write (as a writer dying without the atomic
        # rename would), and the reader must treat it as a miss
        monkeypatch.setenv("REPRO_FAULTS", "torn@store:1.0")
        store = ArtifactStore("analysis", tmp_path)
        store.put("k", {"v": 1})
        assert store.stats.torn == 1 and store.stats.stores == 0
        assert (store.root() / "k.pkl").exists()  # half a pickle landed
        fresh = ArtifactStore("analysis", tmp_path)
        assert fresh.get("k") is None
        assert fresh.stats.misses == 1
        # recovery: without the fault the same publish heals the entry
        monkeypatch.delenv("REPRO_FAULTS")
        store.put("k", {"v": 1})
        assert ArtifactStore("analysis", tmp_path).get("k") == {"v": 1}

    def test_unpicklable_value_is_dropped_silently(self, tmp_path):
        store = ArtifactStore("analysis", tmp_path)
        store.put("bad", lambda: None)  # lambdas don't pickle
        assert store.get("bad") is None
        assert store.stats.stores == 0

    def test_clear_drops_all_versions(self, tmp_path):
        store = ArtifactStore("analysis", tmp_path)
        store.put("k", 1)
        assert len(store) == 1
        store.clear()
        assert len(store) == 0
        assert store.get("k") is None


class TestStoreRoundTrip:
    def test_value_round_trips_bytes_identical(self, tmp_path):
        store = ArtifactStore("iisearch", tmp_path)
        record = {"rmii": 3, "smii": 2, "refuted": [3, 4], "ii": 5}
        store.put("sig", record)
        loaded = ArtifactStore("iisearch", tmp_path).get("sig")
        assert loaded == record
        assert pickle.dumps(loaded) == pickle.dumps(record)


class TestFaultInjectedTearing:
    """Torn-write chaos through the production code paths themselves."""

    def test_torn_cache_append_recovers_on_reload(self, tmp_path,
                                                  monkeypatch):
        queries = SPACE.enumerate()
        monkeypatch.setenv("REPRO_FAULTS", "torn@cache:1.0")
        torn_cache = ResultCache(tmp_path)
        torn_run = evaluate(queries, jobs=1, cache=torn_cache)
        assert torn_cache.stats.torn == len(queries)
        assert torn_cache.stats.stores == 0
        # every line on disk is torn: a fresh load must drop them all
        # and recompute — same results, zero hits, no crash
        monkeypatch.delenv("REPRO_FAULTS")
        fresh = ResultCache(tmp_path)
        rerun = evaluate(queries, jobs=1, cache=fresh)
        assert rerun.cache_stats.hits == 0
        assert rerun.results == torn_run.results
        assert all(isinstance(r, DesignPoint) for r in rerun.results)

    def test_deterministic_tearing_is_stable_across_runs(self, tmp_path,
                                                         monkeypatch):
        # store/cache torn coins key on content alone (no attempt), so
        # the same artifact tears on every run — the read-side recovery
        # path is exercised every time, not once in a blue moon
        monkeypatch.setenv("REPRO_FAULTS", "torn@store:0.5")
        first, second = [], []
        for trace in (first, second):
            store = ArtifactStore("analysis", tmp_path / "s")
            for i in range(32):
                store.put(f"key-{i}", {"v": i})
            trace.append((store.stats.torn, store.stats.stores))
        assert first == second
        assert 0 < first[0][0] < 32  # some torn, some published

    def test_two_processes_sweep_one_store_under_torn_faults(
            self, tmp_path, monkeypatch):
        """The headline chaos test: concurrent sweeps + torn publishes.

        Both sweep children inherit ``torn@cache`` + ``torn@store``
        injection, so every result-cache append and artifact publish is
        torn under concurrency — and both processes must still produce
        the full, correct, identical result set (recomputing what the
        torn records refused to serve).
        """
        monkeypatch.setenv("REPRO_FAULTS",
                           "torn@cache:1.0,torn@store:1.0")
        ctx = multiprocessing.get_context("fork")
        queue = ctx.Queue()
        procs = [ctx.Process(target=_sweep_worker, args=(tmp_path, queue))
                 for _ in range(2)]
        for p in procs:
            p.start()
        outcomes = [queue.get(timeout=120) for _ in procs]
        for p in procs:
            p.join(timeout=120)
            assert p.exitcode == 0
        assert outcomes[0] == outcomes[1]

        # fault-free ground truth from a pristine process-local state
        monkeypatch.delenv("REPRO_FAULTS")
        clean = evaluate(SPACE.enumerate(), jobs=1, cache=None)
        expected = [(type(r).__name__, getattr(r, "ii", None))
                    for r in clean.results]
        assert outcomes[0] == expected

        # and the shared cache file, full of torn lines, must still be
        # loadable: a fresh reader recomputes instead of crashing
        warm = evaluate(SPACE.enumerate(), jobs=1,
                        cache=ResultCache(tmp_path))
        assert warm.results == clean.results


@pytest.fixture(autouse=True)
def _no_ambient_cache(monkeypatch, tmp_path):
    """Each test gets a private cache dir even if it forgets one."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "ambient"))
