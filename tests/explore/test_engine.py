"""Engine behavior: parallel == serial, skip capture, cache wiring,
and equivalence with the legacy serial compilation path."""

import pytest

from repro.explore import (
    DesignQuery, DesignSpace, ResultCache, SkipRecord, best_designs,
    evaluate, format_best, format_pareto, format_skips, format_summary,
)
from repro.hw.report import DesignPoint

FAST = DesignSpace(kernels=("iir",), factors=(2,))


@pytest.fixture(scope="module")
def iir_result():
    return evaluate(FAST.enumerate(), jobs=1)


class TestEvaluate:
    def test_results_align_with_queries(self, iir_result):
        assert len(iir_result.results) == len(iir_result.queries) == 4
        for q, r in iir_result.pairs():
            assert isinstance(r, DesignPoint)
            assert r.kernel == "iir" and r.variant == q.variant

    def test_parallel_matches_serial(self):
        # two fresh runs: immune to other tests mutating shared fixtures
        ser = evaluate(FAST.enumerate(), jobs=1)
        par = evaluate(FAST.enumerate(), jobs=2)
        assert par.results == ser.results

    def test_skips_are_captured_not_raised(self):
        qs = [DesignQuery("wavelet", "squash", ds=4),
              DesignQuery("iir", "original")]
        res = evaluate(qs, jobs=1)
        assert isinstance(res.results[0], SkipRecord)
        assert res.results[0].phase == "legality"
        assert isinstance(res.results[1], DesignPoint)
        assert format_skips(res)  # renders a table

    def test_skips_survive_the_pool(self):
        qs = [DesignQuery("wavelet", "squash", ds=4),
              DesignQuery("mpeg2", "squash", ds=4)]
        res = evaluate(qs, jobs=2)
        assert all(isinstance(r, SkipRecord) for r in res.results)

    def test_attach_base_ii(self, iir_result):
        iir_result.attach_base_ii()
        orig = next(r for q, r in iir_result.pairs()
                    if q.variant == "original")
        for q, r in iir_result.pairs():
            if q.variant in ("original", "pipelined"):
                assert r.base_ii is None  # serial path leaves these unset
            else:
                assert r.base_ii == orig.ii

    def test_unknown_kernel_is_quarantined(self):
        # unclassified exceptions no longer abort the sweep: the
        # supervised engine retries, then quarantines the culprit with
        # provenance, and the neighbor still evaluates
        from repro.explore import FailRecord, format_fails
        res = evaluate([DesignQuery("nope", "original"),
                        DesignQuery("iir", "original")],
                       jobs=1, retries=1)
        fail = res.results[0]
        assert isinstance(fail, FailRecord)
        assert fail.kind == "exception"
        assert "KeyError" in fail.reason and "nope" in fail.reason
        assert fail.attempts == 2  # initial dispatch + one retry
        assert isinstance(res.results[1], DesignPoint)
        assert res.supervision["quarantined"] == 1
        assert "Quarantined" in format_fails(res)
        assert "1 failed (quarantined)" in format_summary(res)

    def test_quarantined_queries_are_never_cached(self, tmp_path):
        q = DesignQuery("nope", "original")
        cache = ResultCache(tmp_path)
        evaluate([q], jobs=1, retries=0, cache=cache)
        assert cache.stats.stores == 0
        warm = evaluate([q], jobs=1, retries=0, cache=ResultCache(tmp_path))
        assert warm.cache_stats.hits == 0  # the re-run retried it

    def test_duplicate_queries_cost_one_compile(self, tmp_path):
        q = DesignQuery("iir", "original")
        res = evaluate([q, q, q], jobs=1, cache=ResultCache(tmp_path))
        assert res.cache_stats.misses == 1
        assert res.cache_stats.stores == 1
        assert res.results[0] == res.results[1] == res.results[2]
        assert isinstance(res.results[0], DesignPoint)

    def test_point_for_uses_the_index(self, iir_result):
        for q in iir_result.queries:
            assert iir_result.point_for(q) is not None
        assert iir_result._index is not None  # built once, then O(1)
        assert iir_result.point_for(DesignQuery("iir", "squash",
                                                ds=999)) is None


class TestEngineCache:
    def test_second_run_is_all_hits(self, tmp_path):
        qs = FAST.enumerate()
        cold = evaluate(qs, jobs=1, cache=ResultCache(tmp_path))
        assert cold.cache_stats.misses == len(qs)
        assert cold.cache_stats.stores == len(qs)

        warm = evaluate(qs, jobs=1, cache=ResultCache(tmp_path))
        assert warm.cache_stats.hits == len(qs)
        assert warm.cache_stats.hit_rate >= 0.9
        assert warm.results == cold.results

    def test_partial_hit_fills_only_the_gap(self, tmp_path):
        qs = FAST.enumerate()
        evaluate(qs[:2], jobs=1, cache=ResultCache(tmp_path))
        mixed = evaluate(qs, jobs=1, cache=ResultCache(tmp_path))
        assert mixed.cache_stats.hits == 2
        assert mixed.cache_stats.misses == len(qs) - 2

    def test_reused_cache_reports_per_run_stats(self, tmp_path):
        qs = FAST.enumerate()
        cache = ResultCache(tmp_path)
        evaluate(qs, jobs=1, cache=cache)
        warm = evaluate(qs, jobs=1, cache=cache)  # same instance
        assert warm.cache_stats.hits == len(qs)
        assert warm.cache_stats.misses == 0
        assert warm.cache_stats.hit_rate == 1.0

    def test_cached_skips_replay(self, tmp_path):
        q = DesignQuery("wavelet", "squash", ds=4)
        evaluate([q], jobs=1, cache=ResultCache(tmp_path))
        warm = evaluate([q], jobs=1, cache=ResultCache(tmp_path))
        assert warm.cache_stats.hits == 1
        assert isinstance(warm.results[0], SkipRecord)


class TestAgainstSerialPath:
    """The engine must reproduce compile_variants point-for-point."""

    def test_matches_compile_variants(self, iir_result):
        from repro.analysis.loops import find_kernel_nests
        from repro.nimble import compile_variants
        from repro.workloads import benchmark_by_name

        bm = benchmark_by_name("iir")
        prog = bm.build(**bm.eval_kwargs)
        vs = compile_variants(prog, find_kernel_nests(prog)[0],
                              factors=(2,))
        iir_result.attach_base_ii()
        by_label = {q.label: r for q, r in iir_result.pairs()}
        for point in vs.all_points():
            assert by_label[point.label] == point


class TestBatching:
    """Dispatch groups by (kernel, variant) in first-seen order."""

    def test_batches_group_by_kernel_variant(self):
        from repro.explore.engine import _batched
        qs = [DesignQuery("iir", "squash", ds=2),
              DesignQuery("iir", "jam", ds=2),
              DesignQuery("iir", "squash", ds=4),
              DesignQuery("des-mem", "squash", ds=2)]
        assert _batched(qs) == [[0, 2], [1], [3]]

    def test_large_groups_split_to_honour_jobs(self):
        from repro.explore.engine import _batched
        qs = [DesignQuery("iir", "squash", ds=f)
              for f in (2, 4, 8, 16, 32, 64)]
        assert _batched(qs) == [[0, 1, 2, 3, 4, 5]]
        assert _batched(qs, jobs=3) == [[0, 1], [2, 3], [4, 5]]
        assert _batched(qs, jobs=100) == [[i] for i in range(6)]

    def test_single_kernel_factor_sweep_parallel_matches_serial(self):
        space = DesignSpace(kernels=("iir",), variants=("squash",),
                            factors=(2, 4, 8))
        ser = evaluate(space.enumerate(), jobs=1)
        par = evaluate(space.enumerate(), jobs=3)
        assert par.results == ser.results

    def test_batch_payload_shape(self):
        from repro.nimble.compiler import compile_query_batch
        payload = compile_query_batch([DesignQuery("iir", "original"),
                                       DesignQuery("iir", "pipelined")])
        assert set(payload) == {"results", "stages", "counters", "metrics"}
        assert len(payload["results"]) == 2
        assert all(isinstance(r, DesignPoint) for r in payload["results"])

    def test_stage_seconds_cover_fresh_compiles_only(self, tmp_path):
        qs = FAST.enumerate()
        cold = evaluate(qs, jobs=1, cache=ResultCache(tmp_path))
        assert set(cold.stage_seconds) <= \
            {"transform", "analyze", "schedule", "validate", "verify"}
        assert sum(cold.stage_seconds.values()) > 0
        warm = evaluate(qs, jobs=1, cache=ResultCache(tmp_path))
        assert warm.stage_seconds == {}  # all hits: no worker time

    def test_batched_parallel_matches_serial_with_mixed_cache(self,
                                                             tmp_path):
        # half the space pre-cached: the batch layer must stitch cached
        # and fresh results back into query order
        qs = FAST.enumerate()
        evaluate(qs[::2], jobs=1, cache=ResultCache(tmp_path))
        mixed = evaluate(qs, jobs=2, cache=ResultCache(tmp_path))
        serial = evaluate(qs, jobs=1)
        assert mixed.results == serial.results


class TestLabels:
    def test_jam_squash_point_label_unambiguous(self):
        # factor alone is ambiguous: jam(4)+squash(2) and jam(2)+squash(4)
        # both have factor 8 — squash_ds disambiguates
        kw = dict(kernel="k", variant="jam+squash", ii=1, op_rows=1,
                  registers=1, reg_rows=1.0, rec_mii=0, res_mii=0,
                  outer_trip=0, inner_trip=0)
        assert DesignPoint(factor=8, squash_ds=2, **kw).label == \
            "jam(4)+squash(2)"
        assert DesignPoint(factor=8, squash_ds=4, **kw).label == \
            "jam(2)+squash(4)"


class TestReports:
    def test_summary_counts(self, iir_result):
        text = format_summary(iir_result)
        assert "4 evaluated, 0 skipped" in text and "cache:" in text

    def test_pareto_contains_original(self, iir_result):
        text = format_pareto(iir_result)
        assert "Pareto frontier" in text
        assert "original" in text and "speedup" in text

    def test_best_designs_ranking(self, iir_result):
        ranked = best_designs(iir_result, "speedup")
        norms = ranked[("iir", "acev")]
        speedups = [n.speedup for n in norms]
        assert speedups == sorted(speedups, reverse=True)
        # a transformed design beats the original baseline (speedup 1.0)
        assert norms[0].point.variant in ("squash", "jam")
        assert norms[0].speedup > 1.0
        assert format_best(iir_result)
