"""Pareto extraction on hand-built point sets + ranking semantics."""

from dataclasses import dataclass

import pytest

from repro.explore import dominates, pareto_front


@dataclass
class P:
    """Hand-built stand-in exposing the three default objective attrs."""

    ii: int
    area_rows: float
    registers: int


class TestDominance:
    def test_strictly_better_everywhere(self):
        assert dominates(P(1, 10, 5), P(2, 20, 9))

    def test_equal_does_not_dominate(self):
        a = P(3, 30, 7)
        assert not dominates(a, P(3, 30, 7))

    def test_tie_on_some_axes_still_dominates(self):
        assert dominates(P(3, 30, 6), P(3, 30, 7))

    def test_tradeoff_is_incomparable(self):
        fast_big = P(1, 100, 10)
        slow_small = P(10, 10, 10)
        assert not dominates(fast_big, slow_small)
        assert not dominates(slow_small, fast_big)


class TestParetoFront:
    def test_hand_built_front(self):
        # classic staircase: three non-dominated + two dominated
        a = P(1, 100, 50)   # fastest, big
        b = P(5, 50, 20)    # middle
        c = P(20, 10, 5)    # slowest, tiny
        d = P(6, 60, 25)    # dominated by b
        e = P(20, 100, 50)  # dominated by a, b, c
        front = pareto_front([a, d, b, e, c])
        assert front == [a, b, c]

    def test_single_point_is_front(self):
        p = P(1, 1, 1)
        assert pareto_front([p]) == [p]

    def test_empty(self):
        assert pareto_front([]) == []

    def test_duplicates_all_survive(self):
        a, b = P(1, 1, 1), P(1, 1, 1)
        assert pareto_front([a, b]) == [a, b]

    def test_custom_keys(self):
        lo = P(1, 99, 99)
        hi = P(9, 1, 1)
        assert pareto_front([lo, hi], keys=(lambda p: p.ii,)) == [lo]

    def test_front_invariant_under_reordering(self):
        pts = [P(1, 100, 50), P(5, 50, 20), P(6, 60, 25), P(20, 10, 5)]
        front = pareto_front(pts)
        reordered = pareto_front(list(reversed(pts)))
        assert {id(p) for p in front} == {id(p) for p in reordered}

    def test_no_point_in_front_is_dominated(self):
        pts = [P(i, 100 - 3 * i, (7 * i) % 23) for i in range(20)]
        front = pareto_front(pts)
        for p in front:
            assert not any(dominates(q, p) for q in pts)


class TestObjectives:
    def test_unknown_objective_raises(self):
        from repro.explore import ExploreResult, best_designs
        empty = ExploreResult(queries=[], results=[])
        with pytest.raises(KeyError, match="efficiency"):
            best_designs(empty, objective="banana")
