"""The deterministic fault-injection plane: parsing, coin flips, memo."""

import pytest

from repro.errors import ReproError
from repro.faults import (
    FAULTS_ENV, FAULTS_SEED_ENV, InjectedCrash, InjectedHang, active_plan,
    fault_site, parse_faults, torn_write,
)


class TestParse:
    def test_single_clause(self):
        plan = parse_faults("crash@worker:0.3")
        assert plan.prob("crash", "worker") == 0.3
        assert plan.prob("hang", "worker") == 0.0

    def test_multiple_clauses_and_whitespace(self):
        plan = parse_faults(" crash@worker:0.2 , torn@store:1.0 ,")
        assert plan.prob("crash", "worker") == 0.2
        assert plan.prob("torn", "store") == 1.0

    @pytest.mark.parametrize("spec,match", [
        ("crash", "malformed"),
        ("crash@worker", "malformed"),
        ("crash@nowhere:0.5", "unknown site"),
        ("torn@worker:0.5", "supports"),
        ("crash@worker:lots", "not a number"),
        ("crash@worker:0", r"\(0, 1\]"),
        ("crash@worker:1.5", r"\(0, 1\]"),
    ])
    def test_garbage_raises(self, spec, match):
        with pytest.raises(ReproError, match=match):
            parse_faults(spec)

    def test_empty_spec_is_an_empty_plan(self):
        assert not parse_faults("")


class TestDecide:
    def test_deterministic(self):
        plan = parse_faults("crash@worker:0.5", seed=3)
        again = parse_faults("crash@worker:0.5", seed=3)
        keys = [f"q{i}:0" for i in range(64)]
        assert [plan.decide("crash", "worker", k) for k in keys] == \
            [again.decide("crash", "worker", k) for k in keys]

    def test_seed_changes_the_coins(self):
        a = parse_faults("crash@worker:0.5", seed=1)
        b = parse_faults("crash@worker:0.5", seed=2)
        keys = [f"q{i}:0" for i in range(64)]
        assert [a.decide("crash", "worker", k) for k in keys] != \
            [b.decide("crash", "worker", k) for k in keys]

    def test_rate_tracks_probability(self):
        plan = parse_faults("crash@worker:0.25", seed=0)
        n = 2000
        fired = sum(plan.decide("crash", "worker", f"k{i}")
                    for i in range(n))
        assert 0.18 < fired / n < 0.32

    def test_probability_one_always_fires(self):
        plan = parse_faults("torn@cache:1.0")
        assert all(plan.decide("torn", "cache", f"k{i}")
                   for i in range(32))

    def test_retry_draws_a_fresh_coin(self):
        # worker keys embed the attempt: the same query flips different
        # coins across retries, so a crashed query can converge
        plan = parse_faults("crash@worker:0.5", seed=0)
        flips = {plan.decide("crash", "worker", f"deadbeef:{a}")
                 for a in range(32)}
        assert flips == {True, False}


class TestActivePlan:
    def test_unset_is_none(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        assert active_plan() is None

    def test_env_selects_and_memoizes(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "crash@worker:0.5")
        monkeypatch.setenv(FAULTS_SEED_ENV, "9")
        plan = active_plan()
        assert plan is not None and plan.seed == 9
        assert active_plan() is plan  # memo: same env, same object
        monkeypatch.setenv(FAULTS_SEED_ENV, "10")
        assert active_plan().seed == 10  # env change re-parses

    def test_garbage_env_raises(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "crash@worker")
        with pytest.raises(ReproError, match="malformed"):
            active_plan()

    def test_bad_seed_raises(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "crash@worker:0.5")
        monkeypatch.setenv(FAULTS_SEED_ENV, "pi")
        with pytest.raises(ReproError, match=FAULTS_SEED_ENV):
            active_plan()


class TestSites:
    def test_noop_without_a_plan(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        fault_site("worker", "anything")
        assert torn_write("store", "anything") is False

    def test_main_process_crash_raises(self, monkeypatch):
        # in the parent, crash must raise (not kill the CLI): jobs=1
        # sweeps degrade to the retry/quarantine path
        monkeypatch.setenv(FAULTS_ENV, "crash@worker:1.0")
        with pytest.raises(InjectedCrash):
            fault_site("worker", "k:0")

    def test_main_process_hang_raises(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "hang@worker:1.0")
        with pytest.raises(InjectedHang):
            fault_site("worker", "k:0")

    def test_injected_faults_are_repro_errors(self):
        assert issubclass(InjectedCrash, ReproError)
        assert issubclass(InjectedHang, ReproError)
