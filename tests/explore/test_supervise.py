"""The supervised dispatcher: retries, crash recovery, stragglers,
bisection/quarantine, interrupts, and killed-sweep resume.

Driven with synthetic module-level workers (picklable under the fork
start method) so every failure mode is scripted, not statistical; the
engine-level chaos runs live in ``test_concurrent_cache.py`` and the
bench ``resilience`` phase.
"""

import os
import signal
import time

import pytest

from repro.explore.supervise import (
    BatchFailure, SweepInterrupted, run_inline, run_supervised,
)

# --- synthetic workers (module-level: pickled by reference) -----------
#
# Each item is a tuple whose head selects the behavior:
#   ("ok", x)             -> contributes x * 2
#   ("raise_until", n, x) -> raises while attempt < n, then ok
#   ("crash_until", n, x) -> kills the worker process while attempt < n
#   ("hang", x)           -> sleeps far past any test timeout
#   ("poison", x)         -> raises on every attempt
#   ("interrupt", x)      -> raises KeyboardInterrupt


def _stub_worker(items, attempt):
    out = []
    for item in items:
        kind, rest = item[0], item[1:]
        if kind == "raise_until" and attempt < rest[0]:
            raise RuntimeError(f"flaky until {rest[0]} (attempt {attempt})")
        if kind == "crash_until" and attempt < rest[0]:
            os._exit(42)
        if kind == "hang":
            time.sleep(120)
        if kind == "poison":
            raise RuntimeError("always fails")
        if kind == "interrupt":
            raise KeyboardInterrupt
        out.append(rest[-1] * 2)
    return out


def _collect():
    """(on_payload, on_failure) pair recording into shared dicts."""
    got: dict[int, int] = {}
    fails: list[BatchFailure] = []

    def on_payload(positions, payload):
        got.update(zip(positions, payload))

    return got, fails, on_payload, fails.append


class TestInline:
    def test_happy_path(self):
        items = [("ok", i) for i in range(5)]
        got, fails, on_p, on_f = _collect()
        stats = run_inline([[0, 1, 2], [3, 4]], items, _stub_worker,
                           on_p, on_f)
        assert got == {i: i * 2 for i in range(5)}
        assert not fails
        assert stats.dispatches == 2 and not stats.eventful

    def test_retry_then_success(self):
        items = [("raise_until", 2, 7)]
        got, fails, on_p, on_f = _collect()
        stats = run_inline([[0]], items, _stub_worker, on_p, on_f,
                           retries=2)
        assert got == {0: 14} and not fails
        assert stats.retries == 2 and stats.exceptions == 2

    def test_bisection_corners_the_culprit(self):
        # one poison item inside a batch of five: the innocents must all
        # complete and exactly the culprit must be quarantined
        items = [("ok", 0), ("ok", 1), ("poison", 2), ("ok", 3),
                 ("ok", 4)]
        got, fails, on_p, on_f = _collect()
        stats = run_inline([[0, 1, 2, 3, 4]], items, _stub_worker,
                           on_p, on_f, retries=1)
        assert got == {0: 0, 1: 2, 3: 6, 4: 8}
        assert [f.position for f in fails] == [2]
        assert fails[0].kind == "exception"
        assert "always fails" in fails[0].reason
        assert fails[0].attempts >= 2  # burned a real budget
        assert stats.bisections >= 1 and stats.quarantined == 1

    def test_zero_retries_quarantines_immediately(self):
        got, fails, on_p, on_f = _collect()
        stats = run_inline([[0]], [("poison", 1)], _stub_worker,
                           on_p, on_f, retries=0)
        assert fails[0].attempts == 1
        assert stats.dispatches == 1

    def test_keyboard_interrupt_becomes_sweep_interrupted(self):
        items = [("ok", 0), ("interrupt", 1), ("ok", 2)]
        got, fails, on_p, on_f = _collect()
        with pytest.raises(SweepInterrupted) as exc:
            run_inline([[0], [1], [2]], items, _stub_worker, on_p, on_f)
        assert got == {0: 0}  # the completed batch was committed
        assert exc.value.committed == 1 and exc.value.total == 3
        assert "resume" in str(exc.value)
        assert isinstance(exc.value, KeyboardInterrupt)


class TestSupervised:
    def test_happy_path_parallel(self):
        items = [("ok", i) for i in range(6)]
        got, fails, on_p, on_f = _collect()
        stats = run_supervised([[0, 1], [2, 3], [4, 5]], items,
                               _stub_worker, on_p, on_f, workers=2)
        assert got == {i: i * 2 for i in range(6)}
        assert not fails and stats.respawns == 0

    def test_worker_crash_respawns_and_recovers(self):
        # the batch kills its worker on attempt 0; the pool must break,
        # respawn, and the retry (attempt 1) must succeed
        items = [("crash_until", 1, 5), ("ok", 9)]
        got, fails, on_p, on_f = _collect()
        stats = run_supervised([[0], [1]], items, _stub_worker,
                               on_p, on_f, workers=2, retries=3)
        assert got == {0: 10, 1: 18}
        assert not fails
        assert stats.crashes >= 1 and stats.respawns >= 1

    def test_persistent_crasher_is_quarantined_innocents_survive(self):
        items = [("crash_until", 99, 0), ("ok", 1), ("ok", 2)]
        got, fails, on_p, on_f = _collect()
        stats = run_supervised([[0, 1, 2]], items, _stub_worker,
                               on_p, on_f, workers=2, retries=1)
        assert got == {1: 2, 2: 4}
        assert [f.position for f in fails] == [0]
        assert fails[0].kind == "crash"
        assert stats.quarantined == 1

    def test_hung_batch_times_out_and_neighbors_complete(self):
        items = [("hang", 0), ("ok", 1)]
        got, fails, on_p, on_f = _collect()
        t0 = time.monotonic()
        stats = run_supervised([[0], [1]], items, _stub_worker,
                               on_p, on_f, workers=2, retries=0,
                               batch_timeout=1.0)
        assert time.monotonic() - t0 < 30  # never waits out the sleep
        assert got == {1: 2}
        assert [f.kind for f in fails] == ["timeout"]
        assert "1s wall-clock budget" in fails[0].reason
        assert stats.timeouts >= 1 and stats.respawns >= 1

    def test_no_orphaned_workers_after_timeout(self):
        import multiprocessing
        items = [("hang", 0)]
        got, fails, on_p, on_f = _collect()
        run_supervised([[0]], items, _stub_worker, on_p, on_f,
                       workers=2, retries=0, batch_timeout=0.5)
        # the hung worker was explicitly terminated, not abandoned
        assert multiprocessing.active_children() == []

    def test_worker_keyboard_interrupt_interrupts_the_sweep(self):
        items = [("interrupt", 0)]
        got, fails, on_p, on_f = _collect()
        with pytest.raises(SweepInterrupted):
            run_supervised([[0]], items, _stub_worker, on_p, on_f,
                           workers=2)

    def test_mixed_failures_converge(self):
        items = [("raise_until", 1, 0), ("crash_until", 1, 1),
                 ("ok", 2), ("ok", 3)]
        got, fails, on_p, on_f = _collect()
        stats = run_supervised([[0, 1], [2, 3]], items, _stub_worker,
                               on_p, on_f, workers=2, retries=6)
        assert got == {0: 0, 1: 2, 2: 4, 3: 6}
        assert not fails
        assert stats.eventful


class TestKilledSweepResume:
    def test_sigkilled_sweep_resumes_from_the_cache(self, tmp_path):
        """SIGKILL the whole sweep process mid-run; rerun must resume.

        The child runs a real multi-batch sweep committing per batch;
        the parent waits for the cache file to hold at least one record,
        then SIGKILLs the child — the harshest interrupt there is.  The
        rerun must serve the committed batches from the cache and
        produce the same results as an undisturbed sweep.
        """
        from repro.explore import DesignSpace, ResultCache, evaluate

        space = DesignSpace(kernels=("iir",), variants=("squash", "jam"),
                            factors=(2, 4))
        qs = space.enumerate()
        cache_dir = tmp_path / "cache"

        pid = os.fork()
        if pid == 0:  # child: sweep until killed
            try:
                evaluate(qs, jobs=1, cache=ResultCache(cache_dir))
            finally:
                os._exit(0)

        try:
            cache_file = ResultCache(cache_dir).path
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if cache_file.exists() and \
                        cache_file.read_text().count("\n") >= 1:
                    break
                time.sleep(0.01)
            else:
                pytest.fail("child sweep never committed a batch")
        finally:
            os.kill(pid, signal.SIGKILL)
            os.waitpid(pid, 0)

        resumed = evaluate(qs, jobs=1, cache=ResultCache(cache_dir))
        assert resumed.cache_stats.hits >= 1  # resumed, not restarted
        fresh = evaluate(qs, jobs=1, cache=None)
        assert resumed.results == fresh.results
