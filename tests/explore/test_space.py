"""Design-space declaration: enumeration, composition, stable hashes."""

import pytest

from repro.explore import DesignQuery, DesignSpace, table_sweep_space


class TestDesignQuery:
    def test_hash_deterministic(self):
        a = DesignQuery("iir", "squash", ds=4)
        b = DesignQuery("iir", "squash", ds=4)
        assert a == b
        assert a.query_hash == b.query_hash
        assert len(a.query_hash) == 24

    def test_hash_roundtrips_through_dict(self):
        q = DesignQuery("des-mem", "jam+squash", ds=4, jam=2,
                        target_spec="acev::ports=1")
        again = DesignQuery(**q.to_dict())
        assert again == q and again.query_hash == q.query_hash

    def test_hash_distinguishes_every_field(self):
        base = DesignQuery("iir", "squash", ds=4)
        variants = [
            DesignQuery("des-hw", "squash", ds=4),
            DesignQuery("iir", "jam", ds=4),
            DesignQuery("iir", "squash", ds=8),
            DesignQuery("iir", "jam+squash", ds=4, jam=2),
            DesignQuery("iir", "squash", ds=4, target_spec="garp"),
        ]
        hashes = {base.query_hash} | {v.query_hash for v in variants}
        assert len(hashes) == len(variants) + 1

    def test_inactive_factors_normalize(self):
        # factors a variant ignores must not split the cache key
        assert DesignQuery("iir", "original", ds=8, jam=4) == \
            DesignQuery("iir", "original")
        assert DesignQuery("iir", "squash", ds=4, jam=2) == \
            DesignQuery("iir", "squash", ds=4)
        assert DesignQuery("iir", "squash", ds=4, jam=2).query_hash == \
            DesignQuery("iir", "squash", ds=4).query_hash

    def test_known_hash_value_is_stable(self):
        # Pinned: the persistent cache key must not drift across
        # releases, or every stored result silently invalidates.
        # (Re-pinned when the query schema gained the scheduler axis.)
        assert DesignQuery("iir", "squash", ds=2).query_hash == \
            "aeac6b01ce0fb89f28c1912d"

    def test_labels(self):
        assert DesignQuery("iir", "original").label == "original"
        assert DesignQuery("iir", "squash", ds=8).label == "squash(8)"
        assert DesignQuery("iir", "jam+squash", ds=4, jam=2).label == \
            "jam(2)+squash(4)"

    def test_rejects_bad_variant_and_factors(self):
        with pytest.raises(ValueError):
            DesignQuery("iir", "unrolled")
        with pytest.raises(ValueError):
            DesignQuery("iir", "squash", ds=0)

    def test_rejects_unknown_scheduler(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            DesignQuery("iir", "squash", ds=2, scheduler="annealing")

    def test_scheduler_distinguishes_hash_and_label(self):
        a = DesignQuery("iir", "squash", ds=2)
        b = DesignQuery("iir", "squash", ds=2, scheduler="backtrack")
        assert a.query_hash != b.query_hash
        assert b.label == "squash(2)@backtrack"

    def test_original_normalizes_scheduler(self):
        # The original design is list-scheduled whatever the strategy:
        # queries must collapse to one cache entry.
        assert DesignQuery("iir", "original", scheduler="backtrack") == \
            DesignQuery("iir", "original")


class TestDesignSpace:
    def test_enumerate_counts(self):
        space = DesignSpace(kernels=("iir", "des-hw"), factors=(2, 4),
                            jam_factors=(2,),
                            variants=("original", "pipelined", "squash",
                                      "jam", "jam+squash"))
        # per kernel: 1 + 1 + 2 + 2 + (1*2) = 8
        assert space.size == 16

    def test_enumeration_order_deterministic(self):
        space = DesignSpace(kernels=("iir",), factors=(2, 4))
        assert space.enumerate() == space.enumerate()
        labels = [q.label for q in space.enumerate()]
        assert labels == ["original", "pipelined", "squash(2)",
                          "squash(4)", "jam(2)", "jam(4)"]

    def test_union_composes_and_dedupes(self):
        a = DesignSpace(kernels=("iir",), factors=(2,))
        b = DesignSpace(kernels=("iir",), factors=(2, 4),
                        variants=("squash",))
        both = a | b
        labels = [q.label for q in both.enumerate()]
        # squash(2) appears once even though both spaces contain it
        assert labels.count("squash(2)") == 1
        assert "squash(4)" in labels
        assert both.size == a.size + 1

    def test_union_across_targets(self):
        a = DesignSpace(kernels=("iir",), factors=(2,),
                        target_specs=("acev",))
        b = DesignSpace(kernels=("iir",), factors=(2,),
                        target_specs=("acev::ports=1",))
        assert (a | b).size == 2 * a.size

    def test_rejects_unknown_variant(self):
        with pytest.raises(ValueError):
            DesignSpace(kernels=("iir",), variants=("bogus",))

    def test_scheduler_axis_dedupes_original(self):
        space = DesignSpace(kernels=("iir",), factors=(2,),
                            variants=("original", "pipelined", "squash"),
                            schedulers=("modulo", "backtrack"))
        labels = [q.label for q in space.enumerate()]
        # original collapses across strategies; the rest split
        assert labels.count("original") == 1
        assert "pipelined@modulo" in labels
        assert "squash(2)@backtrack" in labels
        assert space.size == 1 + 2 * 2

    def test_table_sweep_space_matches_variant_labels(self):
        space = table_sweep_space(["iir"], factors=(2, 4, 8, 16))
        labels = [q.label for q in space.enumerate()]
        assert labels == ["original", "pipelined", "squash(2)",
                          "squash(4)", "squash(8)", "squash(16)",
                          "jam(2)", "jam(4)", "jam(8)", "jam(16)"]
