"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "skipjack-mem" in out and "MPEG-2" in out

    def test_profile(self, capsys):
        assert main(["profile", "adpcm"]) == 0
        out = capsys.readouterr().out
        assert "3 loops" in out

    def test_squash_verifies(self, capsys):
        assert main(["squash", "skipjack-hw", "--ds", "2"]) == 0
        out = capsys.readouterr().out
        assert "verified" in out and "speedup" in out

    def test_squash_show_code(self, capsys):
        assert main(["squash", "iir", "--ds", "2", "--show-code"]) == 0
        out = capsys.readouterr().out
        assert "for (" in out

    def test_tables_subset(self, capsys):
        assert main(["tables", "6.2", "--factors", "2"]) == 0
        out = capsys.readouterr().out
        assert "II (cycles)" in out

    def test_tables_to_dir(self, tmp_path, capsys):
        assert main(["tables", "fig2.4", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "fig_2_4.txt").exists()

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            main(["profile", "nope"])

    def test_garp_target(self, capsys):
        assert main(["squash", "des-hw", "--ds", "2",
                     "--target", "garp"]) == 0


class TestExploreCommand:
    def test_pareto_and_cache_hits_on_second_run(self, tmp_path, capsys):
        argv = ["explore", "--kernel", "iir", "--factors", "2",
                "--jobs", "2", "--pareto",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "Pareto frontier" in first
        assert "0 hits" in first

        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "100% hit rate" in second
        # identical designs either way
        assert first.split("cache:")[0].split("\n", 1)[0] == \
            second.split("cache:")[0].split("\n", 1)[0]

    def test_no_cache_never_hits(self, tmp_path, capsys):
        argv = ["explore", "--kernel", "iir", "--factors", "2",
                "--no-cache", "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        assert main(argv) == 0
        assert "0 hits" in capsys.readouterr().out

    def test_best_and_skips_and_out(self, tmp_path, capsys):
        out = tmp_path / "report.txt"
        assert main(["explore", "--kernel", "iir", "--kernel", "wavelet",
                     "--variants", "original", "squash",
                     "--factors", "2", "--best",
                     "--cache-dir", str(tmp_path / "cache"),
                     "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "Best designs" in text and "Skipped designs" in text
        assert out.exists() and "Best designs" in out.read_text()

    def test_clear_cache_recomputes(self, tmp_path, capsys):
        argv = ["explore", "--kernel", "iir", "--variants", "original",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv + ["--clear-cache"]) == 0
        assert "0 hits" in capsys.readouterr().out

    def test_scheduler_axis(self, tmp_path, capsys):
        assert main(["explore", "--kernel", "iir",
                     "--variants", "original", "squash",
                     "--factors", "2",
                     "--scheduler", "modulo", "--scheduler", "backtrack",
                     "--pareto",
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert "squash(2)@modulo" in out or "squash(2)@backtrack" in out
        # 1 deduped original + squash under each strategy
        assert "explored 3 designs" in out

    def test_combined_variant_target_spec(self, tmp_path, capsys):
        assert main(["explore", "--kernel", "iir",
                     "--variants", "original", "jam+squash",
                     "--factors", "2", "--jam-factors", "2",
                     "--target", "acev::ports=1", "--pareto",
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert "jam(2)+squash(2)" in out and "acev::ports=1" in out

    def test_quarantine_surfaces_and_sets_exit_code(self, tmp_path,
                                                    monkeypatch, capsys):
        # every worker dispatch crash-injected, zero retries: the whole
        # sweep quarantines, the report says so, and the exit code is
        # distinct from success — never a silent partial result
        monkeypatch.setenv("REPRO_FAULTS", "crash@worker:1.0")
        assert main(["explore", "--kernel", "iir",
                     "--variants", "original", "--jobs", "1",
                     "--retries", "0", "--no-cache"]) == 3
        out = capsys.readouterr().out
        assert "1 failed (quarantined)" in out
        assert "Quarantined designs" in out and "crash" in out

    def test_retries_recover_injected_crashes(self, tmp_path,
                                              monkeypatch, capsys):
        # p=0.5 coins are re-flipped per attempt: a generous --retries
        # budget converges to the full clean result set
        monkeypatch.setenv("REPRO_FAULTS", "crash@worker:0.5")
        monkeypatch.setenv("REPRO_FAULTS_SEED", "11")
        assert main(["explore", "--kernel", "iir", "--factors", "2",
                     "--jobs", "1", "--retries", "25",
                     "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "4 evaluated, 0 skipped" in out
        assert "failed" not in out

    def test_resume_rejects_no_cache(self, capsys):
        assert main(["explore", "--kernel", "iir", "--resume",
                     "--no-cache"]) == 2
        assert "--resume needs the result cache" in \
            capsys.readouterr().err

    def test_bad_fault_spec_fails_before_forking(self, monkeypatch):
        from repro.errors import ReproError
        monkeypatch.setenv("REPRO_FAULTS", "crash@worker")
        with pytest.raises(ReproError, match="malformed"):
            main(["explore", "--kernel", "iir", "--no-cache"])


class TestMainModuleAlias:
    def test_bench_quick_writes_json_and_checks_golden(self, tmp_path,
                                                       monkeypatch, capsys):
        import json
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        out = tmp_path / "BENCH_test.json"
        assert main(["bench", "--quick", "--jobs", "1",
                     "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "warm_recompile" in text and "byte-identical" in text
        record = json.loads(out.read_text())
        assert record["golden"] == {"checked": True, "ok": True,
                                    "detail": ""}
        assert record["phases"]["warm_result"]["result_cache"]["hit_rate"] \
            == 1.0
        assert record["phases"]["cold"]["stages_s"]["schedule"] > 0

    def test_bench_speedups_against_baseline(self, tmp_path, monkeypatch,
                                             capsys):
        import json
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        base = tmp_path / "base.json"
        base.write_text(json.dumps({"cold_wall_s": 100.0}))
        out = tmp_path / "BENCH_test.json"
        assert main(["bench", "--quick", "--jobs", "1", "--out", str(out),
                     "--baseline", str(base)]) == 0
        record = json.loads(out.read_text())
        assert record["speedup_vs_baseline"]["cold"] > 1
        assert record["speedup_vs_baseline"]["warm_recompile"] > 1

    def test_python_dash_m_repro(self, monkeypatch, capsys):
        import runpy
        import sys
        monkeypatch.setattr(sys, "argv", ["repro", "list"])
        with pytest.raises(SystemExit) as exc:
            runpy.run_module("repro", run_name="__main__")
        assert exc.value.code == 0
        assert "skipjack-mem" in capsys.readouterr().out
