"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "skipjack-mem" in out and "MPEG-2" in out

    def test_profile(self, capsys):
        assert main(["profile", "adpcm"]) == 0
        out = capsys.readouterr().out
        assert "3 loops" in out

    def test_squash_verifies(self, capsys):
        assert main(["squash", "skipjack-hw", "--ds", "2"]) == 0
        out = capsys.readouterr().out
        assert "verified" in out and "speedup" in out

    def test_squash_show_code(self, capsys):
        assert main(["squash", "iir", "--ds", "2", "--show-code"]) == 0
        out = capsys.readouterr().out
        assert "for (" in out

    def test_tables_subset(self, capsys):
        assert main(["tables", "6.2", "--factors", "2"]) == 0
        out = capsys.readouterr().out
        assert "II (cycles)" in out

    def test_tables_to_dir(self, tmp_path, capsys):
        assert main(["tables", "fig2.4", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "fig_2_4.txt").exists()

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            main(["profile", "nope"])

    def test_garp_target(self, capsys):
        assert main(["squash", "des-hw", "--ds", "2",
                     "--target", "garp"]) == 0
