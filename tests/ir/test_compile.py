"""Compiled executor pinned to the tree-walking interpreter."""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ir import compile_program, run_program
from repro.ir.randgen import RandConfig, random_program


def _assert_same(prog, params=None):
    ref = run_program(prog, params=params)
    fast = compile_program(prog)(params=params)
    assert set(ref.arrays) == set(fast.arrays)
    for name in ref.arrays:
        np.testing.assert_array_equal(ref.arrays[name], fast.arrays[name],
                                      err_msg=f"array {name}")
    for name, v in ref.scalars.items():
        assert fast.scalars.get(name) == pytest.approx(v), f"scalar {name}"


class TestCompiledEngine:
    def test_fig21(self, fig21):
        _assert_same(fig21)

    def test_fig41(self, fig41):
        _assert_same(fig41, params={"k": 3})

    def test_source_attached(self, fig21):
        fn = compile_program(fig21)
        assert "def _program" in fn.source

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_random_programs_int(self, seed):
        prog = random_program(random.Random(seed))
        _assert_same(prog)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_random_programs_deep(self, seed):
        cfg = RandConfig(max_depth=3, max_stmts=4, max_expr_depth=4)
        prog = random_program(random.Random(seed), cfg)
        _assert_same(prog)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_random_programs_float(self, seed):
        cfg = RandConfig(allow_float=True, allow_div=False)
        prog = random_program(random.Random(seed), cfg)
        _assert_same(prog)
