"""Unit tests for IR node construction and operator overloading."""

import numpy as np
import pytest

from repro.errors import IRError, TypeMismatchError
from repro.ir import (
    BOOL, F64, I32, U8, ArrayDecl, BinOp, Const, Load, Program, Select,
    UnOp, Var, as_expr, const,
)


class TestConst:
    def test_wraps_on_construction(self):
        assert Const(256, U8).value == 0
        assert Const(-1, U8).value == 255

    def test_infer_types(self):
        assert const(5).ty is I32
        assert const(2.5).ty is F64
        assert const(True).ty is BOOL

    def test_float_coerced(self):
        assert isinstance(Const(3, F64).value, float)


class TestOperatorOverloading:
    def test_add_builds_binop(self):
        x = Var("x", I32)
        e = x + 1
        assert isinstance(e, BinOp) and e.op == "add"
        assert isinstance(e.rhs, Const) and e.rhs.value == 1

    def test_reflected(self):
        x = Var("x", I32)
        e = 10 - x
        assert e.op == "sub"
        assert isinstance(e.lhs, Const) and e.lhs.value == 10

    def test_constant_hint_follows_lhs_type(self):
        x = Var("x", U8)
        e = x + 1
        assert e.rhs.ty is U8
        assert e.ty is U8

    def test_comparisons_produce_bool(self):
        x = Var("x", I32)
        assert (x < 3).ty is BOOL
        assert x.eq(3).ty is BOOL
        assert x.ne(3).op == "ne"

    def test_shift_keeps_lhs_type(self):
        x = Var("x", U8)
        assert (x << 2).ty is U8
        assert (x >> 1).ty is U8

    def test_bitwise_on_float_rejected(self):
        f = Var("f", F64)
        with pytest.raises(TypeMismatchError):
            f & 1
        with pytest.raises(TypeMismatchError):
            ~f

    def test_neg_invert(self):
        x = Var("x", I32)
        assert (-x).op == "neg"
        assert (~x).op == "not"

    def test_unknown_op_rejected(self):
        with pytest.raises(IRError):
            BinOp("bogus", Var("x", I32), Var("y", I32))

    def test_identity_equality_nodes_usable_as_keys(self):
        a = Var("x", I32)
        b = Var("x", I32)
        d = {a: 1, b: 2}
        assert len(d) == 2


class TestSelectAndLoad:
    def test_select_unifies(self):
        s = Select(Var("c", BOOL), Var("a", U8), Var("b", I32))
        assert s.ty is I32

    def test_load_single_index_normalized(self):
        ld = Load("arr", Var("i", I32), U8)
        assert isinstance(ld.index, tuple) and len(ld.index) == 1


class TestArrayDecl:
    def test_rom_requires_init(self):
        with pytest.raises(IRError):
            ArrayDecl("t", (4,), U8, rom=True)

    def test_init_shape_checked(self):
        with pytest.raises(IRError):
            ArrayDecl("t", (4,), U8, init=np.zeros(5, dtype=np.uint8))

    def test_init_cast_to_decl_dtype(self):
        d = ArrayDecl("t", (3,), U8, init=np.array([1, 2, 3], dtype=np.int64))
        assert d.init.dtype == np.dtype("u1")

    def test_size(self):
        assert ArrayDecl("t", (4, 8), I32).size == 32


class TestProgram:
    def test_scalar_type_lookup(self):
        p = Program("p", params={"n": I32})
        p.declare_local("x", U8)
        assert p.scalar_type("n") is I32
        assert p.scalar_type("x") is U8
        with pytest.raises(IRError):
            p.scalar_type("nope")

    def test_redeclare_conflict(self):
        p = Program("p")
        p.declare_local("x", U8)
        with pytest.raises(TypeMismatchError):
            p.declare_local("x", I32)

    def test_fresh_name(self):
        p = Program("p")
        p.declare_local("x", U8)
        assert p.fresh_name("x") == "x_1"
        assert p.fresh_name("y") == "y"
