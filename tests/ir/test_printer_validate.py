"""Unit tests for the printer and the structural validator."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.ir import (
    Assign, BinOp, Block, Const, F64, For, I32, If, Load, ProgramBuilder,
    Select, Store, U8, UnOp, Var, expr_to_str, program_to_str, stmt_to_str,
    validate_program,
)


class TestPrinter:
    def test_precedence_parens(self):
        x, y, z = Var("x", I32), Var("y", I32), Var("z", I32)
        assert expr_to_str((x + y) * z) == "(x + y) * z"
        assert expr_to_str(x + y * z) == "x + y * z"

    def test_load_store(self):
        ld = Load("t", (Var("i", I32),), U8)
        assert expr_to_str(ld) == "t[i]"
        st = Store("t", (Var("i", I32),), Const(3, U8))
        assert "t[i] = 3u8;" in stmt_to_str(st)

    def test_select_and_minmax(self):
        x = Var("x", I32)
        s = Select(x < 0, Const(0, I32), x)
        assert "?" in expr_to_str(s)
        assert expr_to_str(BinOp("min", x, Const(3, I32))) == "min(x, 3)"

    def test_for_rendering(self, fig21):
        text = program_to_str(fig21)
        assert "for (i = 0; i < 8; i++)" in text
        assert "rom" not in text

    def test_if_else_rendering(self):
        s = If(Var("c", U8) < 1, Block([Assign("x", Const(1, I32))]),
               Block([Assign("x", Const(2, I32))]))
        t = stmt_to_str(s)
        assert "else" in t

    def test_step_rendering(self):
        f = For("i", Const(0, I32), Const(8, I32), Block(), step=2)
        assert "i += 2" in stmt_to_str(f)

    def test_program_header(self, fig41):
        text = program_to_str(fig41)
        assert "param i32 k;" in text
        assert "output i32 out[8];" in text


class TestValidator:
    def test_valid_program_passes(self, fig21, fig41):
        validate_program(fig21)
        validate_program(fig41)

    def _prog(self):
        b = ProgramBuilder("p")
        b.array("a", (8,), U8, output=True)
        b.local("x", I32)
        return b

    def test_undefined_read_rejected(self):
        b = self._prog()
        b.program.declare_local("y", I32)
        b.program.body.stmts.append(Assign("x", Var("y", I32)))
        with pytest.raises(ValidationError, match="possibly-undefined"):
            validate_program(b.program)

    def test_if_branch_defines_not_definite(self):
        b = self._prog()
        b.assign("x", 0)
        b.program.declare_local("y", I32)
        with b.if_(b.var("x") < 1):
            b.assign("y", 1)
        b.program.body.stmts.append(Assign("x", Var("y", I32)))
        with pytest.raises(ValidationError):
            validate_program(b.program)

    def test_both_branches_define_is_definite(self):
        b = self._prog()
        b.assign("x", 0)
        b.program.declare_local("y", I32)
        with b.if_(b.var("x") < 1):
            b.assign("y", 1)
        with b.else_():
            b.assign("y", 2)
        b.program.body.stmts.append(Assign("x", Var("y", I32)))
        validate_program(b.program)

    def test_loop_body_defs_definite_when_trip_known_positive(self):
        b = self._prog()
        b.program.declare_local("y", I32)
        with b.loop("i", 0, 4):
            b.assign("y", 1)
        b.program.body.stmts.append(Assign("x", Var("y", I32)))
        validate_program(b.program)  # trip 4 >= 1: y is definite

    def test_loop_body_defs_not_definite_for_symbolic_trip(self):
        b = self._prog()
        b.param("n", I32)
        b.program.declare_local("y", I32)
        with b.loop("i", 0, b.var("n")):
            b.assign("y", 1)
        b.program.body.stmts.append(Assign("x", Var("y", I32)))
        with pytest.raises(ValidationError):
            validate_program(b.program)

    def test_loop_body_defs_not_definite_for_zero_trip(self):
        b = self._prog()
        b.program.declare_local("y", I32)
        with b.loop("i", 0, 0):
            b.assign("y", 1)
        b.program.body.stmts.append(Assign("x", Var("y", I32)))
        with pytest.raises(ValidationError):
            validate_program(b.program)

    def test_undeclared_local_assign(self):
        b = self._prog()
        b.program.body.stmts.append(Assign("zz", Const(1, I32)))
        with pytest.raises(ValidationError, match="undeclared local"):
            validate_program(b.program)

    def test_store_to_rom_rejected(self):
        b = self._prog()
        b.rom("t", np.zeros(4, dtype=np.uint8), U8)
        b.program.body.stmts.append(Store("t", (Const(0, I32),), Const(1, U8)))
        with pytest.raises(ValidationError, match="ROM"):
            validate_program(b.program)

    def test_bounds_clobbered_by_body(self):
        b = self._prog()
        b.assign("x", 4)
        with b.loop("i", 0, b.var("x")):
            b.assign("x", 0)
        with pytest.raises(ValidationError, match="bounds read"):
            validate_program(b.program)

    def test_induction_var_assigned_in_body(self):
        b = self._prog()
        with b.loop("i", 0, 4):
            b.program.body  # keep context
            b.emit(Assign("i", Const(0, I32)))
        with pytest.raises(ValidationError, match="induction variable"):
            validate_program(b.program)

    def test_name_collision_scalar_array(self):
        b = self._prog()
        b.program.declare_local("a", I32)  # collides with array "a"
        with pytest.raises(ValidationError, match="scalar and array"):
            validate_program(b.program)
