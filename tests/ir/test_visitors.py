"""Unit tests for traversal/cloning/rewriting utilities."""

import random

import pytest

from repro.ir import (
    Assign, BinOp, Block, Const, For, I32, Load, ProgramBuilder, Store, U8,
    Var, arrays_read, arrays_written, clone_program, clone_stmt, count_nodes,
    map_exprs, rename_vars, run_program, structurally_equal, substitute,
    variables_read, variables_written, walk_exprs, walk_stmts,
)
from repro.ir.randgen import random_program


class TestWalk:
    def test_walk_exprs_preorder(self):
        e = BinOp("add", Var("x", I32), BinOp("mul", Var("y", I32), Const(2, I32)))
        kinds = [type(n).__name__ for n in walk_exprs(e)]
        assert kinds == ["BinOp", "Var", "BinOp", "Var", "Const"]

    def test_walk_stmts_counts(self, fig21):
        fors = [s for s in walk_stmts(fig21.body) if isinstance(s, For)]
        assert len(fors) == 2

    def test_fact_extraction(self, fig21):
        outer = fig21.body.stmts[0]
        assert "a" in variables_written(outer)
        assert "a" in variables_read(outer)
        assert arrays_read(outer) == {"data_in"}
        assert arrays_written(outer) == {"data_out"}

    def test_count_nodes_positive(self, fig41):
        assert count_nodes(fig41.body) > 15


class TestClone:
    def test_clone_fresh_identity(self, fig21):
        c = clone_stmt(fig21.body)
        assert structurally_equal(c, fig21.body)
        orig = set(map(id, walk_stmts(fig21.body)))
        new = set(map(id, walk_stmts(c)))
        assert orig.isdisjoint(new)

    def test_clone_program_runs_identically(self, fig41):
        a = run_program(fig41, params={"k": 3})
        b = run_program(clone_program(fig41), params={"k": 3})
        assert list(a.arrays["out"]) == list(b.arrays["out"])

    def test_clone_random(self):
        prog = random_program(random.Random(7))
        assert structurally_equal(clone_program(prog).body, prog.body)


class TestRewrites:
    def test_substitute_replaces_reads_only(self):
        s = Block([Assign("y", BinOp("add", Var("x", I32), Const(1, I32))),
                   Assign("x", Var("y", I32))])
        out = substitute(s, {"x": Const(5, I32)})
        assert structurally_equal(
            out.stmts[0], Assign("y", BinOp("add", Const(5, I32), Const(1, I32))))
        # write target unchanged
        assert out.stmts[1].var == "x"

    def test_substitute_clones_replacement(self):
        big = BinOp("mul", Var("a", I32), Const(3, I32))
        s = Block([Assign("y", Var("x", I32)), Assign("z", Var("x", I32))])
        out = substitute(s, {"x": big})
        e1, e2 = out.stmts[0].expr, out.stmts[1].expr
        assert structurally_equal(e1, e2) and e1 is not e2

    def test_rename_vars_renames_writes(self):
        s = Block([Assign("x", Const(1, I32)),
                   Assign("y", Var("x", I32))])
        out = rename_vars(s, {"x": "x2"})
        assert out.stmts[0].var == "x2"
        assert out.stmts[1].expr.name == "x2"

    def test_rename_loop_var(self, fig21):
        outer = clone_stmt(fig21.body.stmts[0])
        out = rename_vars(outer, {"i": "ii"})
        assert out.var == "ii"
        reads = variables_read(out)
        assert "i" not in reads and "ii" in reads

    def test_map_exprs_bottom_up(self):
        # fold add(1,2) -> 3 via map
        def fold(e):
            if (isinstance(e, BinOp) and e.op == "add"
                    and isinstance(e.lhs, Const) and isinstance(e.rhs, Const)):
                return Const(e.lhs.value + e.rhs.value, e.ty)
            return e
        s = Assign("x", BinOp("add", Const(1, I32),
                              BinOp("add", Const(2, I32), Const(3, I32))))
        out = map_exprs(s, fold)
        assert isinstance(out.expr, Const) and out.expr.value == 6


class TestStructuralEquality:
    def test_detects_difference(self, fig21, fig41):
        assert not structurally_equal(fig21.body, fig41.body)

    def test_const_type_sensitive(self):
        assert not structurally_equal(Const(1, I32), Const(1, U8))
