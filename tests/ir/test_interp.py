"""Unit tests for the tree-walking interpreter."""

import numpy as np
import pytest

from repro.errors import InterpError
from repro.ir import (
    F32, F64, I8, I32, U8, U16, BinOp, Const, ProgramBuilder, Var,
    run_program,
)
from repro.ir.interp import Interpreter, eval_binop, make_table_cost_model


class TestEvalBinop:
    @pytest.mark.parametrize("op,a,b,expected", [
        ("add", 250, 10, 4),       # u8 wrap
        ("sub", 3, 10, 249),
        ("mul", 16, 16, 0),
        ("and", 0xF3, 0x0F, 3),
        ("or", 0x80, 1, 0x81),
        ("xor", 0xFF, 0x0F, 0xF0),
        ("shl", 0x81, 1, 2),
        ("shr", 0x80, 3, 0x10),
        ("min", 5, 9, 5),
        ("max", 5, 9, 9),
    ])
    def test_u8_ops(self, op, a, b, expected):
        assert eval_binop(op, a, b, U8) == expected

    def test_signed_division_truncates_toward_zero(self):
        assert eval_binop("div", -7, 2, I32) == -3
        assert eval_binop("div", 7, -2, I32) == -3
        assert eval_binop("mod", -7, 2, I32) == -1
        assert eval_binop("mod", 7, -2, I32) == 1

    def test_division_by_zero(self):
        with pytest.raises(InterpError):
            eval_binop("div", 1, 0, I32)
        with pytest.raises(InterpError):
            eval_binop("mod", 1, 0, I32)

    def test_comparisons(self):
        assert eval_binop("lt", 1, 2, U8) == 1
        assert eval_binop("ge", 1, 2, U8) == 0
        assert eval_binop("eq", 3, 3, U8) == 1
        assert eval_binop("ne", 3, 3, U8) == 0

    def test_oversized_shift_is_zero(self):
        assert eval_binop("shl", 1, 8, U8) == 0
        assert eval_binop("shr", 0x80, 9, U8) == 0

    def test_arithmetic_shr_on_signed(self):
        assert eval_binop("shr", -8, 1, I8) == -4

    def test_f32_rounds_each_op(self):
        r = eval_binop("add", 1.0, 1e-9, F32)
        assert r == 1.0  # rounded through IEEE single
        assert eval_binop("add", 1.0, 1e-9, F64) != 1.0


class TestProgramExecution:
    def test_fig21_runs(self, fig21):
        res = run_program(fig21)
        # reference: 4 rounds of a = ((a+7) & 0xff) ^ 0x5a
        def rounds(a):
            for _ in range(4):
                a = ((a + 7) & 0xFF) ^ 0x5A
            return a
        expected = [rounds(v) for v in range(1, 9)]
        assert list(res.arrays["data_out"]) == expected

    def test_fig41_matches_python(self, fig41):
        res = run_program(fig41, params={"k": 3})
        def ref(i, m=8, n=5):
            a = i * 3 + 1
            for j in range(n):
                b = a + i
                c = b - j
                a = (c & 15) * 3
            return a
        assert list(res.arrays["out"]) == [ref(i) for i in range(8)]

    def test_missing_param_raises(self, fig41):
        with pytest.raises(InterpError):
            run_program(fig41)

    def test_array_override_and_copy(self):
        b = ProgramBuilder("p")
        a = b.array("a", (4,), U8, output=True)
        with b.loop("i", 0, 4) as i:
            a[i] = a[i] + 1
        src = np.array([1, 2, 3, 4], dtype=np.uint8)
        res = run_program(b.build(), arrays={"a": src})
        assert list(res.arrays["a"]) == [2, 3, 4, 5]
        assert list(src) == [1, 2, 3, 4]  # caller's buffer untouched

    def test_rom_override_rejected(self):
        b = ProgramBuilder("p")
        b.rom("t", np.zeros(4, dtype=np.uint8), U8)
        with pytest.raises(InterpError):
            run_program(b.build(), arrays={"t": np.ones(4)})

    def test_out_of_bounds_store(self):
        b = ProgramBuilder("p")
        a = b.array("a", (4,), U8)
        x = b.local("x", I32)
        b.assign(x, 9)
        b.store(a, b.var("x"), 1)
        with pytest.raises(InterpError):
            run_program(b.build())

    def test_out_of_bounds_load(self):
        b = ProgramBuilder("p")
        a = b.array("a", (4,), U8)
        x = b.local("x", I32)
        b.assign(x, a[b.param("n")])
        with pytest.raises(InterpError):
            run_program(b.build(), params={"n": 4})

    def test_undefined_scalar_read(self):
        b = ProgramBuilder("p")
        x = b.local("x", I32)
        y = b.local("y", I32)
        b.assign(x, Var("y", I32))
        with pytest.raises(InterpError):
            run_program(b.build(validate=False))

    def test_assignment_wraps_to_local_type(self):
        b = ProgramBuilder("p")
        x = b.local("x", U8)
        b.assign(x, 300)
        assert run_program(b.build()).scalars["x"] == 44

    def test_select_evaluates_both_arms(self):
        # both arms are charged (hardware select semantics)
        b = ProgramBuilder("p")
        x = b.local("x", I32)
        b.assign(x, 1)
        from repro.ir import Select
        b.assign(x, Select(b.var("x") < 0, b.var("x") + 1, b.var("x") + 2))
        res = run_program(b.build())
        assert res.scalars["x"] == 3
        assert res.op_counts.get("select") == 1
        assert res.op_counts.get("add") == 2


class TestCostAccounting:
    def test_loop_records(self, fig21):
        res = run_program(fig21)
        recs = sorted(res.loop_records.values(), key=lambda r: r.depth)
        assert len(recs) == 2
        outer, inner = recs
        assert outer.iterations == 8
        assert inner.iterations == 32
        assert outer.inclusive_cost > inner.inclusive_cost > 0
        assert res.total_cost >= outer.inclusive_cost

    def test_cost_model_table(self, fig21):
        model = make_table_cost_model({"add": 10, "xor": 1}, default=0)
        res = Interpreter(fig21, model).run()
        # 32 adds (inner) * 10 + 32 xor * 1
        assert res.total_cost == 32 * 10 + 32 * 1

    def test_op_counts(self, fig21):
        res = run_program(fig21)
        assert res.op_counts["load"] == 8    # data_in[i], once per outer iter
        assert res.op_counts["store"] == 8   # data_out[i]
        assert res.op_counts["add"] == 32    # inner body, 8 * 4
        assert res.op_counts["xor"] == 32
