"""Unit tests for repro.ir.types."""

import numpy as np
import pytest

from repro.errors import TypeMismatchError
from repro.ir.types import (
    BOOL, F32, F64, I8, I16, I32, I64, U8, U16, U32, U64,
    type_from_name, unify, wrap_int,
)


class TestScalarType:
    def test_masks(self):
        assert U8.mask == 0xFF
        assert U16.mask == 0xFFFF
        assert I32.mask == 0xFFFFFFFF

    def test_ranges(self):
        assert I8.min_value == -128 and I8.max_value == 127
        assert U8.min_value == 0 and U8.max_value == 255
        assert I16.max_value == 32767

    def test_numpy_dtypes(self):
        assert U8.numpy_dtype() == np.dtype("u1")
        assert I32.numpy_dtype() == np.dtype("i4")
        assert F32.numpy_dtype() == np.dtype("f4")
        assert F64.numpy_dtype() == np.dtype("f8")

    def test_lookup_by_name(self):
        assert type_from_name("u8") is U8
        assert type_from_name("f64") is F64
        with pytest.raises(TypeMismatchError):
            type_from_name("u128")

    def test_str(self):
        assert str(U16) == "u16"


class TestUnify:
    def test_identity(self):
        assert unify(I32, I32) is I32

    def test_float_beats_int(self):
        assert unify(F64, I32) is F64
        assert unify(I8, F32) is F32

    def test_wider_float_wins(self):
        assert unify(F32, F64) is F64

    def test_wider_int_wins(self):
        assert unify(I8, I32) is I32
        assert unify(U16, U32) is U32

    def test_equal_width_unsigned_wins(self):
        assert unify(I32, U32) is U32
        assert unify(U8, I8) is U8


class TestWrapInt:
    @pytest.mark.parametrize("ty,value,expected", [
        (U8, 256, 0), (U8, 257, 1), (U8, -1, 255),
        (I8, 128, -128), (I8, -129, 127), (I8, 127, 127),
        (U16, 0x1_0000, 0), (I16, 0x8000, -0x8000),
        (U32, 1 << 32, 0), (I32, (1 << 31), -(1 << 31)),
        (U64, 1 << 64, 0), (I64, 1 << 63, -(1 << 63)),
    ])
    def test_wrap(self, ty, value, expected):
        assert wrap_int(value, ty) == expected

    def test_identity_in_range(self):
        for v in (-5, 0, 5, 100):
            assert wrap_int(v, I32) == v
