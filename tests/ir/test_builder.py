"""Unit tests for the fluent program builder."""

import numpy as np
import pytest

from repro.errors import IRError
from repro.ir import (
    Assign, Block, F64, For, I32, If, Load, ProgramBuilder, Store, U8, Var,
    run_program,
)


class TestDeclarations:
    def test_param_and_local(self):
        b = ProgramBuilder("p")
        n = b.param("n", I32)
        x = b.local("x", U8)
        assert n.name == "n" and x.ty is U8
        prog = b.build()
        assert prog.params == {"n": I32}

    def test_duplicate_param_rejected(self):
        b = ProgramBuilder("p")
        b.param("n")
        with pytest.raises(IRError):
            b.param("n")

    def test_duplicate_array_rejected(self):
        b = ProgramBuilder("p")
        b.array("a", (4,), U8)
        with pytest.raises(IRError):
            b.array("a", (4,), U8)

    def test_rom_store_rejected(self):
        b = ProgramBuilder("p")
        t = b.rom("t", np.zeros(4, dtype=np.uint8), U8)
        with pytest.raises(IRError):
            t[0] = 1


class TestStatementEmission:
    def test_array_sugar(self):
        b = ProgramBuilder("p")
        a = b.array("a", (8,), U8, output=True)
        x = b.local("x", U8)
        b.assign(x, a[3])
        a[4] = x
        prog = b.build()
        assert isinstance(prog.body.stmts[0], Assign)
        assert isinstance(prog.body.stmts[1], Store)

    def test_wrong_arity_rejected(self):
        b = ProgramBuilder("p")
        a = b.array("a", (4, 4), U8)
        with pytest.raises(IRError):
            a[1]

    def test_assign_to_param_rejected(self):
        b = ProgramBuilder("p")
        n = b.param("n")
        with pytest.raises(IRError):
            b.assign(n, 3)

    def test_let_infers_type(self):
        b = ProgramBuilder("p")
        x = b.local("x", U8)
        b.assign(x, 5)
        v = b.let("y", b.var("x") + 1)
        assert v.ty is U8
        assert b.program.locals["y"] is U8


class TestControlFlow:
    def test_loop_context(self):
        b = ProgramBuilder("p")
        acc = b.local("acc", I32)
        b.assign(acc, 0)
        with b.loop("i", 0, 10) as i:
            b.assign(acc, acc + i)
        prog = b.build()
        loop = prog.body.stmts[1]
        assert isinstance(loop, For) and loop.var == "i"
        res = run_program(prog)
        assert res.scalars["acc"] == sum(range(10))

    def test_kernel_annotation(self):
        b = ProgramBuilder("p")
        with b.loop("i", 0, 4, kernel=True):
            pass
        assert b.build().body.stmts[0].annotations["kernel"] is True

    def test_if_else(self):
        b = ProgramBuilder("p")
        x = b.local("x", I32)
        b.assign(x, 5)
        with b.if_(b.var("x") < 10):
            b.assign(x, 1)
        with b.else_():
            b.assign(x, 2)
        res = run_program(b.build())
        assert res.scalars["x"] == 1

    def test_else_without_if_rejected(self):
        b = ProgramBuilder("p")
        with pytest.raises(IRError):
            b.else_()

    def test_else_must_follow_if_directly(self):
        b = ProgramBuilder("p")
        x = b.local("x", I32)
        b.assign(x, 0)
        with b.if_(b.var("x") < 1):
            pass
        b.assign(x, 1)
        with pytest.raises(IRError):
            b.else_()

    def test_nested_loop_structure(self):
        b = ProgramBuilder("p")
        a = b.array("a", (4,), I32, output=True)
        with b.loop("i", 0, 4) as i:
            with b.loop("j", 0, 3) as j:
                a[i] = a[i] + j
        prog = b.build()
        res = run_program(prog)
        assert list(res.arrays["a"]) == [3, 3, 3, 3]
