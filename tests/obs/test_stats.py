"""``repro stats`` rendering and the registered-knob contract."""

import pathlib
import re

from repro.env import KNOBS, registered_knobs
from repro.obs.stats import format_knobs, format_stats, summarize_events

ROOT = pathlib.Path(__file__).resolve().parents[2]


def _snapshot():
    return {
        "counters": {
            "analysis_mem_hits": 8, "analysis_mem_misses": 2,
            "explore.cache.hits": 5, "explore.cache.misses": 5,
            "sched.ii_attempts": 40, "sched.ii_memo_skips": 12,
            "sched.exact_nodes": 1234,
            "supervise.batches": 6, "supervise.retries": 2,
            "faults.injected": 3,
        },
        "gauges": {"explore.jobs": 4},
        "histograms": {
            "stage.schedule": {"count": 4, "sum": 2.0, "min": 0.25,
                               "max": 1.0, "samples": [0.25, 0.5, 0.25,
                                                       1.0]},
            "kernel.iir": {"count": 2, "sum": 3.0, "min": 1.0, "max": 2.0,
                           "samples": [1.0, 2.0]},
        },
    }


class TestFormatStats:
    def test_renders_every_populated_section(self):
        text = format_stats(_snapshot())
        assert "Pipeline stages" in text
        assert "schedule" in text
        assert "Per-kernel compile time" in text
        assert "iir" in text
        assert "Caches" in text
        assert "80.0%" in text   # analysis mem hit rate
        assert "50.0%" in text   # results hit rate
        assert "Scheduler search effort" in text
        assert "1234" in text
        assert "Supervision" in text
        assert "injected faults seen" in text

    def test_empty_snapshot_says_so(self):
        text = format_stats({"counters": {}, "histograms": {}})
        assert "no recorded metrics" in text

    def test_zero_valued_series_are_suppressed(self):
        snap = {"counters": {"supervise.retries": 0,
                             "sched.ii_attempts": 1},
                "histograms": {}}
        text = format_stats(snap)
        assert "retries" not in text
        assert "II candidates tried" in text


class TestSummarizeEvents:
    def test_counts_by_category_and_name(self):
        events = [
            {"name": "flow", "cat": "pipeline", "ph": "X", "ts": 0,
             "dur": 2_000_000, "pid": 1, "tid": 1},
            {"name": "flow", "cat": "pipeline", "ph": "X", "ts": 5,
             "dur": 1_000_000, "pid": 2, "tid": 1},
            {"name": "retry", "cat": "supervise", "ph": "i", "s": "p",
             "ts": 9, "pid": 1, "tid": 1},
            {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
             "args": {"name": "supervisor"}},
        ]
        text = summarize_events(events)
        assert "3 events from 2 process(es)" in text
        assert re.search(r"pipeline\s+flow\s+2\s+3.00s", text)
        assert re.search(r"supervise\s+retry\s+1\s+-", text)


class TestKnobRegistry:
    def test_every_env_read_in_src_is_registered(self):
        """Grep ``src/`` for REPRO_* reads; each must be a declared knob.

        The knob table in :mod:`repro.env` is what ``repro stats
        --knobs`` and the README present as the complete configuration
        surface — an unregistered knob is invisible configuration.
        """
        read = set()
        for path in (ROOT / "src").rglob("*.py"):
            read |= set(re.findall(r"\bREPRO_[A-Z_]+\b", path.read_text()))
        # test-only infrastructure knobs live outside src by design
        read.discard("REPRO_TEST_TIMEOUT")
        registered = set(registered_knobs())
        unregistered = sorted(read - registered)
        assert not unregistered, (
            f"REPRO_* variables read in src/ but missing from "
            f"repro.env.KNOBS: {unregistered}")

    def test_every_registered_knob_is_read_somewhere(self):
        source = "\n".join(p.read_text()
                           for p in (ROOT / "src").rglob("*.py"))
        dead = [k.name for k in KNOBS if k.name not in source]
        assert not dead, f"knobs registered but never read: {dead}"

    def test_every_knob_is_documented_in_readme(self):
        readme = (ROOT / "README.md").read_text()
        missing = [k.name for k in KNOBS if k.name not in readme]
        assert not missing, f"knobs missing from README.md: {missing}"

    def test_format_knobs_lists_every_knob_with_defaults(self):
        text = format_knobs()
        for knob in KNOBS:
            assert knob.name in text
            assert knob.default in text
