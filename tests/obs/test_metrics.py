"""The typed metrics registry: series, snapshots, deltas, merging."""

from repro.obs.metrics import (
    MetricsRegistry, percentile, registry, reset_metrics,
)


class TestSeries:
    def test_counter_get_or_create_and_add(self):
        reg = MetricsRegistry()
        c = reg.counter("a.b")
        c.add()
        c.add(4)
        assert reg.counter("a.b") is c
        assert reg.counter_values() == {"a.b": 5}

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        g = reg.gauge("jobs")
        g.set(4)
        g.set(2)
        assert reg.snapshot()["gauges"] == {"jobs": 2}

    def test_histogram_exact_aggregates(self):
        reg = MetricsRegistry()
        h = reg.histogram("t")
        for v in (3.0, 1.0, 2.0):
            h.observe(v)
        d = h.as_dict()
        assert d["count"] == 3
        assert d["sum"] == 6.0
        assert d["min"] == 1.0
        assert d["max"] == 3.0
        assert d["samples"] == [3.0, 1.0, 2.0]

    def test_histogram_reservoir_stays_bounded(self):
        reg = MetricsRegistry()
        h = reg.histogram("t")
        n = 3 * 2048
        for i in range(n):
            h.observe(float(i))
        # exact aggregates survive the decimation; samples stay bounded
        assert h.count == n
        assert h.vmax == float(n - 1)
        assert len(h.samples) <= 2048
        # decimated samples still span the distribution
        assert percentile(h.samples, 50) > percentile(h.samples, 10)

    def test_collector_contributes_to_snapshots(self):
        reg = MetricsRegistry()
        state = {"hits": 3}

        @reg.collect
        def _c():
            return {"lru_hits": state["hits"]}

        reg.collect(_c)  # idempotent: no double counting
        assert reg.counter_values() == {"lru_hits": 3}
        state["hits"] = 5
        assert reg.counter_values() == {"lru_hits": 5}

    def test_collector_merges_with_direct_counter_of_same_name(self):
        reg = MetricsRegistry()
        reg.collect(lambda: {"x": 2})
        reg.counter("x").add(3)
        assert reg.counter_values() == {"x": 5}


class TestDeltaAndMerge:
    def test_delta_since_subtracts_counters(self):
        reg = MetricsRegistry()
        reg.counter("a").add(2)
        before = reg.snapshot()
        reg.counter("a").add(5)
        reg.counter("b").add(1)
        delta = reg.delta_since(before)
        assert delta["counters"] == {"a": 5, "b": 1}

    def test_delta_drops_unchanged_series(self):
        reg = MetricsRegistry()
        reg.counter("a").add(2)
        reg.histogram("h").observe(1.0)
        delta = reg.delta_since(reg.snapshot())
        assert delta["counters"] == {}
        assert delta["histograms"] == {}

    def test_delta_ships_only_new_histogram_samples(self):
        reg = MetricsRegistry()
        reg.histogram("h").observe(1.0)
        before = reg.snapshot()
        reg.histogram("h").observe(2.0)
        reg.histogram("h").observe(3.0)
        d = reg.delta_since(before)["histograms"]["h"]
        assert d["count"] == 2
        assert d["sum"] == 5.0
        assert d["samples"] == [2.0, 3.0]

    def test_merge_folds_worker_delta_into_parent(self):
        worker = MetricsRegistry()
        worker.counter("sched.ii_attempts").add(7)
        worker.gauge("explore.jobs").set(4)
        worker.histogram("stage.schedule").observe(0.25)
        delta = worker.delta_since({})

        parent = MetricsRegistry()
        parent.counter("sched.ii_attempts").add(1)
        parent.histogram("stage.schedule").observe(0.5)
        parent.merge(delta)
        values = parent.counter_values()
        assert values["sched.ii_attempts"] == 8
        h = parent.histogram("stage.schedule")
        assert h.count == 2
        assert h.total == 0.75
        assert sorted(h.samples) == [0.25, 0.5]

    def test_round_trip_worker_to_parent_equals_local(self):
        # the same observations split across two registries and merged
        # must equal one registry that saw everything
        local = MetricsRegistry()
        parent = MetricsRegistry()
        worker = MetricsRegistry()
        for i in range(10):
            local.counter("c").add(i)
            (parent if i % 2 else worker).counter("c").add(i)
            local.histogram("h").observe(float(i))
            (parent if i % 2 else worker).histogram("h").observe(float(i))
        parent.merge(worker.delta_since({}))
        assert parent.counter_values() == local.counter_values()
        assert parent.histogram("h").count == local.histogram("h").count
        assert parent.histogram("h").total == local.histogram("h").total


class TestResetSemantics:
    def test_reset_zeroes_in_place_so_handles_stay_live(self):
        reg = MetricsRegistry()
        c = reg.counter("a")
        h = reg.histogram("h")
        c.add(5)
        h.observe(1.0)
        reg.reset()
        assert c.value == 0
        assert h.count == 0
        c.add(2)  # the module-cached handle still feeds the registry
        assert reg.counter_values()["a"] == 2

    def test_reset_prefix_only_touches_matching_series(self):
        reg = MetricsRegistry()
        reg.counter("stage.a").add(1)
        reg.counter("sched.b").add(1)
        reg.reset_prefix("stage.")
        values = reg.counter_values()
        assert values["stage.a"] == 0
        assert values["sched.b"] == 1

    def test_histogram_totals_shape(self):
        reg = MetricsRegistry()
        reg.histogram("stage.analyze").observe(0.5)
        reg.histogram("stage.analyze").observe(0.25)
        reg.histogram("kernel.iir").observe(1.0)
        totals = reg.histogram_totals("stage.")
        assert totals == {"analyze": {"seconds": 0.75, "calls": 2}}


class TestModuleSingleton:
    def test_reset_metrics_zeroes_process_registry(self):
        registry().counter("test.only.series").add(3)
        reset_metrics()
        assert registry().counter_values()["test.only.series"] == 0


class TestPercentile:
    def test_empty_is_none(self):
        assert percentile([], 50) is None

    def test_nearest_rank(self):
        samples = [float(i) for i in range(1, 11)]
        assert percentile(samples, 0) == 1.0
        assert percentile(samples, 50) in (5.0, 6.0)  # nearest rank
        assert percentile(samples, 100) == 10.0
