"""The ``--progress`` line renderer."""

import io

from repro.obs.progress import ProgressLine


def _line(stream):
    # the last carriage-return-delimited payload is what the terminal shows
    return stream.getvalue().split("\r")[-1]


class TestProgressLine:
    def test_renders_done_total_and_rate(self):
        out = io.StringIO()
        p = ProgressLine(stream=out, min_interval=0.0)
        p.update({"done": 3, "total": 12})
        text = _line(out)
        assert "3/12 designs" in text
        assert "/s" in text
        assert "ETA" in text

    def test_noise_tallies_appear_only_when_nonzero(self):
        out = io.StringIO()
        p = ProgressLine(stream=out, min_interval=0.0)
        p.update({"done": 1, "total": 4})
        assert "retries" not in _line(out)
        p.update({"done": 2, "total": 4, "retries": 3, "quarantined": 1})
        text = _line(out)
        assert "3 retries" in text
        assert "1 quarantined" in text

    def test_shorter_repaint_pads_over_previous_line(self):
        out = io.StringIO()
        p = ProgressLine(stream=out, min_interval=0.0)
        p.update({"done": 2, "total": 4, "retries": 100})
        long = _line(out)
        p.update({"done": 3, "total": 4})
        assert len(_line(out)) >= len(long)  # padded, no stale tail

    def test_throttles_repaints(self):
        out = io.StringIO()
        p = ProgressLine(stream=out, min_interval=3600.0)
        p.update({"done": 1, "total": 4})
        p.update({"done": 2, "total": 4})
        p.update({"done": 3, "total": 4})
        assert out.getvalue().count("\r") == 1  # only the first painted

    def test_finish_paints_final_state_and_newline(self):
        out = io.StringIO()
        p = ProgressLine(stream=out, min_interval=3600.0)
        p.update({"done": 4, "total": 4})
        p.finish()
        assert "4/4 designs" in _line(out).rstrip("\n")
        assert out.getvalue().endswith("\n")

    def test_finish_without_updates_is_silent(self):
        out = io.StringIO()
        ProgressLine(stream=out).finish()
        assert out.getvalue() == ""

    def test_broken_stream_goes_quiet(self):
        class Broken(io.StringIO):
            def flush(self):
                raise OSError("gone")

        p = ProgressLine(stream=Broken(), min_interval=0.0)
        p.update({"done": 1, "total": 2})
        p.update({"done": 2, "total": 2})  # must not raise
        p.finish()
