"""The span tracer: modes, zero-overhead off path, merge, export."""

import json

import pytest

from repro.errors import ReproError
from repro.obs import trace
from repro.obs.trace import (
    NOOP_SPAN, drain, emit_span, enabled, export_trace, full_enabled,
    inject, instant, reset_trace, span, trace_header, validate_trace,
)


@pytest.fixture(autouse=True)
def _clean_tracer(monkeypatch):
    """Every test starts untraced with an empty buffer."""
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    reset_trace()
    yield
    reset_trace()


def _on(monkeypatch, mode="1"):
    monkeypatch.setenv("REPRO_TRACE", mode)


class TestModes:
    def test_off_by_default(self):
        assert not enabled()
        assert not full_enabled()

    @pytest.mark.parametrize("raw", ["0", "off", ""])
    def test_off_spellings(self, monkeypatch, raw):
        _on(monkeypatch, raw)
        assert not enabled()

    @pytest.mark.parametrize("raw", ["1", "on"])
    def test_on_spellings(self, monkeypatch, raw):
        _on(monkeypatch, raw)
        assert enabled()
        assert not full_enabled()

    def test_full_implies_on(self, monkeypatch):
        _on(monkeypatch, "full")
        assert enabled()
        assert full_enabled()

    def test_garbage_raises(self, monkeypatch):
        _on(monkeypatch, "bogus")
        with pytest.raises(ReproError, match="REPRO_TRACE"):
            enabled()

    def test_mode_memo_tracks_env_flips(self, monkeypatch):
        assert not enabled()
        _on(monkeypatch)
        assert enabled()
        monkeypatch.delenv("REPRO_TRACE")
        assert not enabled()


class TestOffIsFree:
    def test_span_returns_the_shared_noop_singleton(self):
        s1 = span("x", "cat", a=1)
        s2 = span("y", "cat")
        assert s1 is NOOP_SPAN
        assert s2 is NOOP_SPAN

    def test_nothing_is_recorded_when_off(self):
        with span("x", "cat") as sp:
            sp.set(detail=1)
        instant("ping", "cat")
        emit_span("y", "cat", 0.0, 1.0)
        assert drain() == []


class TestRecording:
    def test_span_records_complete_event(self, monkeypatch):
        _on(monkeypatch)
        with span("work", "unit", kernel="iir") as sp:
            sp.set(ii=3)
        (ev,) = drain()
        assert ev["name"] == "work"
        assert ev["cat"] == "unit"
        assert ev["ph"] == "X"
        assert ev["dur"] >= 0
        assert ev["args"] == {"kernel": "iir", "ii": 3}

    def test_nested_spans_record_inner_then_outer(self, monkeypatch):
        _on(monkeypatch)
        with span("outer", "unit"):
            with span("inner", "unit"):
                pass
        inner, outer = drain()
        assert (inner["name"], outer["name"]) == ("inner", "outer")
        # the outer interval must contain the inner one
        assert outer["ts"] <= inner["ts"]
        assert outer["ts"] + outer["dur"] >= inner["ts"] + inner["dur"]

    def test_span_tags_error_arg_on_exception(self, monkeypatch):
        _on(monkeypatch)
        with pytest.raises(ValueError):
            with span("work", "unit"):
                raise ValueError("boom")
        (ev,) = drain()
        assert ev["args"]["error"] == "ValueError"

    def test_instant_event_shape(self, monkeypatch):
        _on(monkeypatch)
        instant("retry", "supervise", attempt=2)
        (ev,) = drain()
        assert ev["ph"] == "i"
        assert ev["s"] == "p"
        assert ev["args"] == {"attempt": 2}

    def test_emit_span_converts_perf_counter_readings(self, monkeypatch):
        import time
        _on(monkeypatch)
        t0 = time.perf_counter()
        t1 = t0 + 0.125
        emit_span("stage", "pipeline.stage", t0, t1)
        (ev,) = drain()
        assert 124_000 <= ev["dur"] <= 126_000  # µs
        # ts is anchored epoch µs: same scale as a live span's
        with span("probe", "unit"):
            pass
        (probe,) = drain()
        assert abs(probe["ts"] - ev["ts"]) < 10_000_000  # within 10s


class TestMergeAndBuffer:
    def test_drain_moves_events(self, monkeypatch):
        _on(monkeypatch)
        instant("a")
        assert len(drain()) == 1
        assert drain() == []

    def test_inject_appends_foreign_events(self, monkeypatch):
        _on(monkeypatch)
        instant("local")
        inject([{"name": "remote", "cat": "worker", "ph": "i", "s": "p",
                 "ts": 1, "pid": 99, "tid": 1}])
        events = drain()
        assert [e["name"] for e in events] == ["local", "remote"]

    def test_buffer_cap_counts_drops(self, monkeypatch):
        from repro.obs import metrics
        _on(monkeypatch)
        monkeypatch.setattr(trace, "_EVENT_CAP", 3)
        dropped0 = metrics.counter("obs.trace.dropped").value
        for _ in range(5):
            instant("x")
        assert len(drain()) == 3
        assert metrics.counter("obs.trace.dropped").value - dropped0 == 2

    def test_inject_respects_cap(self, monkeypatch):
        _on(monkeypatch)
        monkeypatch.setattr(trace, "_EVENT_CAP", 2)
        inject([{"name": str(i), "cat": "c", "ph": "i", "s": "p",
                 "ts": i, "pid": 1, "tid": 1} for i in range(5)])
        assert len(drain()) == 2

    def test_forked_child_does_not_reship_inherited_events(self,
                                                           monkeypatch):
        _on(monkeypatch)
        instant("parent-event")
        # simulate the fork: the child sees the same buffer under a
        # different pid and must start empty instead of re-shipping
        monkeypatch.setattr(trace, "_BUFFER_PID", trace._BUFFER_PID + 1)
        assert drain() == []


class TestExport:
    def test_header_adds_process_metadata_and_metrics(self, monkeypatch):
        import os
        _on(monkeypatch)
        instant("local")
        events = drain()
        events.append({"name": "remote", "cat": "worker", "ph": "i",
                       "s": "p", "ts": 1, "pid": 424242, "tid": 1})
        doc = trace_header(events)
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {e["pid"]: e["args"]["name"] for e in meta}
        assert names[os.getpid()] == "supervisor"
        assert names[424242] == "worker-424242"
        assert "reproMetrics" in doc
        assert doc["displayTimeUnit"] == "ms"

    def test_export_round_trips_as_valid_json(self, monkeypatch, tmp_path):
        _on(monkeypatch)
        with span("work", "unit"):
            instant("ping", "unit")
        out = tmp_path / "trace.json"
        n = export_trace(str(out))
        assert n == 2
        doc = json.loads(out.read_text())
        assert validate_trace(doc) == []
        assert {e["name"] for e in doc["traceEvents"]} \
            >= {"work", "ping", "process_name"}

    def test_off_mode_exports_an_empty_trace(self, tmp_path):
        with span("work", "unit"):
            pass
        out = tmp_path / "trace.json"
        assert export_trace(str(out)) == 0
        doc = json.loads(out.read_text())
        assert [e for e in doc["traceEvents"] if e["ph"] != "M"] == []


class TestValidate:
    def test_accepts_what_the_tracer_produces(self, monkeypatch):
        _on(monkeypatch, "full")
        with span("a", "c", k=1):
            instant("b", "c")
        assert validate_trace(trace_header(drain())) == []

    @pytest.mark.parametrize("doc,match", [
        ([], "top level"),
        ({}, "traceEvents"),
        ({"traceEvents": [{"ph": "Q"}]}, "unknown phase"),
        ({"traceEvents": [{"ph": "X", "name": "a", "cat": "c",
                           "ts": 1, "dur": -1, "pid": 1, "tid": 1}]},
         "dur"),
        ({"traceEvents": [{"ph": "i", "name": "a", "cat": "c",
                           "ts": 1, "s": "z", "pid": 1, "tid": 1}]},
         "scope"),
        ({"traceEvents": [{"ph": "X", "cat": "c", "ts": 1, "dur": 1,
                           "pid": 1, "tid": 1}]},
         "name"),
    ])
    def test_rejects_malformed_documents(self, doc, match):
        problems = validate_trace(doc)
        assert problems
        assert any(match in p for p in problems)
