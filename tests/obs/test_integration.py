"""Observability end to end: worker payloads, merged sweeps, goldens.

The contracts under test:

* workers ship their trace events and metrics deltas with each batch
  payload and the engine merges them, so a parallel sweep ends with one
  sweep-wide event list and one global counter set;
* tracing never changes results — the Table 6.2/6.3 goldens are
  byte-identical with the tracer off and in ``full`` mode;
* under injected worker crashes the merged trace still records the
  supervision story (retries, respawns) alongside the compile spans.
"""

import pathlib

import pytest

from repro.explore import DesignSpace, NullCache, evaluate
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

DATA = pathlib.Path(__file__).resolve().parents[1] / "data"

FAST = DesignSpace(kernels=("iir",), variants=("original", "squash"),
                   factors=(2, 4))


@pytest.fixture(autouse=True)
def _clean_tracer(monkeypatch):
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    obs_trace.reset_trace()
    yield
    obs_trace.reset_trace()


class TestWorkerPayload:
    def test_untraced_payload_has_no_trace_key(self):
        from repro.explore.space import DesignQuery
        from repro.nimble.compiler import compile_query_batch
        payload = compile_query_batch([DesignQuery("iir", "original")])
        assert "trace" not in payload
        assert "metrics" in payload

    def test_traced_payload_ships_drained_events(self, monkeypatch):
        from repro.explore.space import DesignQuery
        from repro.nimble.compiler import compile_query_batch
        monkeypatch.setenv("REPRO_TRACE", "1")
        payload = compile_query_batch([DesignQuery("iir", "original")])
        names = {e["name"] for e in payload["trace"]}
        assert "flow" in names
        assert "batch" in names
        # drained into the payload, not left behind in the buffer
        assert obs_trace.drain() == []

    def test_metrics_delta_covers_batch_work_only(self):
        from repro.explore.space import DesignQuery
        from repro.nimble.compiler import compile_query_batch
        compile_query_batch([DesignQuery("iir", "original")])
        payload = compile_query_batch([DesignQuery("iir", "pipelined")])
        counters = payload["metrics"]["counters"]
        # one flow in this batch: per-batch counters are deltas, not
        # process totals
        assert payload["metrics"]["histograms"]["kernel.iir"]["count"] == 1
        assert counters.get("sched.ii_attempts", 0) >= 1


class TestMergedSweep:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_sweep_merges_every_workers_events(self, monkeypatch, jobs):
        monkeypatch.setenv("REPRO_TRACE", "1")
        obs_trace.drain()
        result = evaluate(FAST.enumerate(), jobs=jobs, cache=NullCache())
        assert not result.fails()
        events = obs_trace.drain()
        flows = [e for e in events if e["name"] == "flow"]
        assert len(flows) == len(FAST.enumerate())
        cats = {e["cat"] for e in events}
        assert {"pipeline", "pipeline.stage", "explore",
                "supervise"} <= cats
        doc = obs_trace.trace_header(events)
        assert obs_trace.validate_trace(doc) == []

    def test_parallel_sweep_counters_match_serial(self, monkeypatch):
        reg = obs_metrics.registry()

        def attempts():
            return reg.counter_values().get("sched.ii_attempts", 0)

        before = attempts()
        evaluate(FAST.enumerate(), jobs=1, cache=NullCache())
        serial = attempts() - before

        before = attempts()
        evaluate(FAST.enumerate(), jobs=2, cache=NullCache())
        parallel = attempts() - before
        # worker deltas merge into the parent registry: the pooled sweep
        # reports the same global search effort as the inline one
        assert serial > 0
        assert parallel == serial

    def test_untraced_sweep_buffers_nothing(self):
        evaluate(FAST.enumerate(), jobs=1, cache=NullCache())
        assert obs_trace.drain() == []


class TestByteIdentity:
    def _formatted_tables(self):
        from repro.harness import (
            clear_caches, format_table_6_2, format_table_6_3,
            run_table_6_2, run_table_6_3,
        )
        clear_caches()
        sweep = run_table_6_2(factors=(2,))
        return (format_table_6_2(sweep),
                format_table_6_3(run_table_6_3(sweep)))

    def test_goldens_byte_identical_with_tracer_in_full_mode(
            self, monkeypatch):
        g62 = (DATA / "golden_table_6_2_f2.txt").read_text()
        g63 = (DATA / "golden_table_6_3_f2.txt").read_text()
        monkeypatch.setenv("REPRO_TRACE", "full")
        t62, t63 = self._formatted_tables()
        assert t62 == g62
        assert t63 == g63
        obs_trace.drain()


class TestChaosTracing:
    def test_crash_chaos_sweep_still_yields_a_complete_trace(
            self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        monkeypatch.setenv("REPRO_FAULTS", "crash@worker:0.3")
        monkeypatch.setenv("REPRO_FAULTS_SEED", "1")
        obs_trace.drain()
        queries = FAST.enumerate()
        result = evaluate(queries, jobs=2, cache=NullCache(), retries=40)
        assert not result.fails()
        events = obs_trace.drain()
        flows = [e for e in events if e["name"] == "flow"]
        # every design compiled exactly once in the merged trace, even
        # though some workers died mid-batch and were re-dispatched
        assert len(flows) >= len(queries)
        assert result.supervision.get("retries", 0) > 0
        assert any(e["name"] == "retry" for e in events)
        assert obs_trace.validate_trace(obs_trace.trace_header(events)) \
            == []
