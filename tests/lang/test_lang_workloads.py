"""Lang-vs-handbuilt parity: the committed ``.lang`` kernels compile to
the same programs as the IR builders, produce byte-identical Table 6.2
blocks, and give identical design points under every scheduler."""

import dataclasses
import pathlib

import numpy as np
import pytest

from repro.explore.space import DesignQuery
from repro.harness import clear_caches, format_table_6_2, run_table_6_2
from repro.lang import compile_file, programs_equivalent
from repro.lang.loader import lang_spec
from repro.nimble.compiler import compile_query
from repro.workloads import benchmark_by_name, simple

KERNEL_DIR = pathlib.Path(__file__).resolve().parents[2] \
    / "src" / "repro" / "lang" / "kernels"
DATA = pathlib.Path(__file__).resolve().parents[1] / "data"

#: committed source file -> the hand-built program it mirrors
PAIRS = {
    "simple-fg": lambda: simple.build_fg_nest(),
    "iir": lambda: _eval_build("iir"),
    "skipjack-mem": lambda: _eval_build("skipjack-mem"),
}


def _eval_build(name):
    bm = benchmark_by_name(name)
    return bm.build(**bm.eval_kwargs)


def _lang_path(stem):
    p = KERNEL_DIR / f"{stem}.lang"
    assert p.exists(), f"committed kernel {p} is missing"
    return p


class TestEquivalence:
    @pytest.mark.parametrize("stem", sorted(PAIRS), ids=sorted(PAIRS))
    def test_committed_source_matches_handbuilt(self, stem):
        prog, _text = compile_file(_lang_path(stem))
        assert programs_equivalent(prog, PAIRS[stem]())

    def test_same_functional_output(self):
        from repro.ir.interp import run_program
        prog, _ = compile_file(_lang_path("simple-fg"))
        hand = simple.build_fg_nest()
        a, b = run_program(prog), run_program(hand)
        for name in b.arrays:
            assert np.array_equal(a.arrays[name], b.arrays[name])


class TestTableParity:
    @pytest.fixture(scope="class")
    def sweeps(self):
        clear_caches()
        hand = run_table_6_2(factors=(2,), jobs=2,
                             kernels=("iir", "skipjack-mem"))
        lang = run_table_6_2(
            factors=(2,), jobs=2,
            kernels=(lang_spec(_lang_path("iir")),
                     lang_spec(_lang_path("skipjack-mem"))))
        return hand, lang

    @pytest.mark.parametrize("name", ["iir", "skipjack-mem"])
    def test_blocks_byte_identical(self, sweeps, name):
        hand, lang = sweeps
        spec = lang_spec(_lang_path(name))
        # rekey under the handbuilt kernel name: the dict key is the
        # table's header column, everything else must match byte for byte
        assert format_table_6_2({name: lang[spec]}) \
            == format_table_6_2({name: hand[name]})

    @pytest.mark.parametrize("name", ["iir", "skipjack-mem"])
    def test_blocks_match_seed_golden(self, sweeps, name):
        _hand, lang = sweeps
        spec = lang_spec(_lang_path(name))
        block = format_table_6_2({name: lang[spec]}).split("\n", 1)[1]
        golden = (DATA / "golden_table_6_2_f2.txt").read_text()
        assert block.strip("\n") in golden


class TestSchedulerParity:
    @pytest.mark.parametrize("scheduler", ["modulo", "backtrack", "exact"])
    def test_design_points_identical(self, scheduler):
        spec = lang_spec(_lang_path("iir"))
        lang_pt = compile_query(DesignQuery(spec, "squash", ds=2,
                                            scheduler=scheduler))
        hand_pt = compile_query(DesignQuery("iir", "squash", ds=2,
                                            scheduler=scheduler))
        assert dataclasses.replace(lang_pt, kernel=hand_pt.kernel) == hand_pt
