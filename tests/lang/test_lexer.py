"""Unit tests for the ``repro.lang`` tokenizer."""

import pytest

from repro.errors import LangError
from repro.ir.types import F32, I32, U8, U16
from repro.lang.diagnostics import SourceText
from repro.lang.lexer import tokenize


def toks(text):
    return tokenize(SourceText(text, "<t>"))


def kinds(text):
    return [t.kind for t in toks(text)]


class TestTokens:
    def test_idents_and_ops(self):
        ts = toks("x = y + 3;")
        assert [t.kind for t in ts] == \
            ["ident", "op", "ident", "op", "int", "op", "eof"]
        assert ts[0].value == "x" and ts[4].value == 3

    def test_spans_are_one_based(self):
        ts = toks("ab cd")
        assert (ts[0].span.line, ts[0].span.col) == (1, 1)
        assert (ts[1].span.line, ts[1].span.col) == (1, 4)

    def test_multichar_ops_win(self):
        ts = toks("a <<= 1")  # lexes as "<<" then "="
        assert [t.value for t in ts[1:3]] == ["<<", "="]
        assert [t.value for t in toks("i++")[1:2]] == ["++"]

    def test_hex_and_leading_zero(self):
        assert toks("0xff")[0].value == 255
        assert toks("007")[0].value == 7

    def test_typed_suffixes(self):
        ts = toks("255u8 40000u16 1.5f32")
        assert (ts[0].value, ts[0].ty) == (255, U8)
        assert (ts[1].value, ts[1].ty) == (40000, U16)
        assert (ts[2].value, ts[2].ty) == (1.5, F32)

    def test_float_forms(self):
        vals = [t.value for t in toks("1.5 1e-05 2.5e3")[:-1]]
        assert vals == [1.5, 1e-05, 2500.0]

    def test_comments_skipped(self):
        assert kinds("a // c\nb /* x\ny */ c") == \
            ["ident", "ident", "ident", "eof"]

    def test_pragma_and_string(self):
        ts = toks('#pragma kernel\nkernel "my name"')
        assert (ts[0].kind, ts[0].value) == ("pragma", "kernel")
        assert (ts[2].kind, ts[2].value) == ("string", "my name")


class TestLexErrors:
    @pytest.mark.parametrize("src, fragment", [
        ('"unterminated', "unterminated"),
        ("/* open", "unterminated"),
        ("12abc", "suffix"),
        ("3u9", "suffix"),
        ("@", "unexpected"),
    ])
    def test_raises_langerror_with_position(self, src, fragment):
        with pytest.raises(LangError) as exc:
            toks(src)
        msg = str(exc.value)
        assert fragment in msg
        assert "<t>:1:" in msg       # file:line:col prefix
        assert "^" in msg            # caret snippet

    def test_suffix_did_you_mean(self):
        with pytest.raises(LangError, match="did you mean 'u64'"):
            toks("9u61")

    def test_never_a_bare_exception(self):
        for src in ("'", "`", "1..2", "0x", "$"):
            with pytest.raises(LangError):
                toks(src)


class TestSuffixTypes:
    def test_all_scalar_type_names_lex(self):
        from repro.ir.types import ALL_TYPES
        for ty in ALL_TYPES:
            if ty.name == "bool":
                continue
            lit = "1.0" if ty.is_float else "1"
            t = toks(f"{lit}{ty.name}")[0]
            assert t.ty is ty

    def test_bare_literals_have_no_type(self):
        assert toks("42")[0].ty is None
        assert toks("1.5")[0].ty is None

    def test_int_suffix_matches(self):
        assert toks("7i32")[0].ty is I32
