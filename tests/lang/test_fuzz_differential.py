"""Source-level differential fuzzing (``repro.lang.fuzz``).

The fast tier runs a handful of pinned seeds through the full
parse → sema → lower → schedule → replay cross-check on both targets;
the bounded ``fuzz``-marked sweep (CI's non-blocking lang-smoke job,
``pytest -m fuzz``) covers ~200 programs.
"""

import random

import pytest

from repro.lang import compile_source
from repro.lang.fuzz import (
    SourceNestSpec, differential_check, random_source_nest, run_fuzz,
)


class TestGenerator:
    def test_emits_compilable_source(self):
        rng = random.Random(0)
        for _ in range(20):
            text = random_source_nest(rng, SourceNestSpec.sample(rng))
            prog = compile_source(text)
            assert prog.arrays["out"].output

    def test_deterministic_per_seed(self):
        a = random_source_nest(random.Random(42))
        b = random_source_nest(random.Random(42))
        assert a == b

    def test_spec_knobs_respected(self):
        spec = SourceNestSpec(m=6, n=3, use_rom=False, seed_arrays=1)
        text = random_source_nest(random.Random(1), spec)
        assert "rom" not in text and "in1[" not in text
        assert "i < 6" in text and "j < 3" in text


class TestDifferentialFast:
    @pytest.mark.parametrize("target", ["acev", "vliw4"])
    def test_pinned_seeds_pass(self, target):
        problems = []
        for seed in range(4):
            problems += differential_check(seed, target)
        assert problems == []

    def test_backtrack_scheduler_seed(self):
        assert differential_check(100, "acev", scheduler="backtrack") == []


@pytest.mark.fuzz
class TestBoundedFuzz:
    def test_sweep_200_programs(self):
        # 100 seeds x 2 targets = 200 differential runs, seed-pinned
        problems = run_fuzz(100, base_seed=0)
        assert problems == [], "\n".join(problems)
