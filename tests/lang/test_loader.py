"""Tests for ``lang:`` kernel specs: content digests, benchmark
resolution, and DesignQuery hash sensitivity to source changes."""

import os

import pytest

from repro.errors import ReproError
from repro.explore.space import DesignQuery
from repro.lang.loader import (
    is_lang_spec, lang_kernel, lang_spec, source_digest,
)
from repro.workloads import benchmark_by_name

SRC = """kernel tiny {
  output u8 out[4];
  u8 a;
  for (i = 0; i < 4; i++) {
    a = 0;
    #pragma kernel
    for (j = 0; j < 3; j++) { a = a + 1; }
    out[i] = a;
  }
}
"""


@pytest.fixture
def tiny(tmp_path):
    p = tmp_path / "tiny.lang"
    p.write_text(SRC)
    return p


class TestSpec:
    def test_canonical_spec_pins_digest(self, tiny):
        spec = lang_spec(str(tiny))
        assert spec == f"lang:{tiny}#{source_digest(SRC)}"

    def test_is_lang_spec(self, tiny):
        assert is_lang_spec(lang_spec(str(tiny)))
        assert is_lang_spec("foo/bar.lang")
        assert not is_lang_spec("skipjack-mem")

    def test_resolution_forms(self, tiny):
        for name in (lang_spec(str(tiny)), f"lang:{tiny}", str(tiny)):
            bm = lang_kernel(name)
            prog = bm.build(**bm.eval_kwargs)
            assert prog.name == "tiny"

    def test_benchmark_by_name_delegates(self, tiny):
        bm = benchmark_by_name(lang_spec(str(tiny)))
        assert "tiny.lang" in bm.description
        assert bm.name.startswith("lang:") and "#" in bm.name

    def test_missing_file(self, tmp_path):
        with pytest.raises(ReproError, match="cannot read"):
            lang_kernel(str(tmp_path / "nope.lang"))

    def test_digest_mismatch_refuses(self, tiny):
        spec = lang_spec(str(tiny))
        tiny.write_text(SRC.replace("j < 3", "j < 5"))
        with pytest.raises(ReproError, match="has changed"):
            lang_kernel(spec)

    def test_relative_path_canonicalized(self, tiny, monkeypatch):
        monkeypatch.chdir(tiny.parent)
        assert lang_spec("tiny.lang") == lang_spec(str(tiny))
        bm = lang_kernel("tiny.lang")
        assert os.path.isabs(bm.name[len("lang:"):].split("#")[0])


class TestQueryHash:
    def test_hash_tracks_source_content(self, tiny):
        q1 = DesignQuery(lang_spec(str(tiny)), "squash", ds=2)
        tiny.write_text(SRC.replace("j < 3", "j < 5"))
        q2 = DesignQuery(lang_spec(str(tiny)), "squash", ds=2)
        assert q1.query_hash != q2.query_hash

    def test_hash_stable_for_same_content(self, tiny):
        q1 = DesignQuery(lang_spec(str(tiny)), "squash", ds=2)
        q2 = DesignQuery(lang_spec(str(tiny)), "squash", ds=2)
        assert q1.query_hash == q2.query_hash
