"""Table-driven diagnostics tests: every malformed program raises
:class:`~repro.errors.LangError` with a ``file:line:col`` position and a
caret snippet — never a bare ``SyntaxError``/``KeyError``/``TypeError``.
"""

import pytest

from repro.errors import LangError, ReproError
from repro.lang import compile_source

# Each case: (name, source, fragment expected in the message).
CASES = [
    ("unknown-type-suffix",
     "kernel k { output u8 o[1]; u8 x; x = 3u7; }",
     "suffix"),
    ("unknown-name-did-you-mean",
     "kernel k { output u8 o[1]; u8 count; count = cuont + 1; }",
     "did you mean 'count'"),
    ("unknown-array-did-you-mean",
     "kernel k { output u8 data[4]; data2[0] = 1; }",
     "did you mean 'data'"),
    ("non-affine-bound",
     "kernel k { output u8 o[8]; u8 x;\n"
     "  for (i = 0; i < x * x; i++) { o[0] = 1; } }",
     "affine"),
    ("store-to-rom",
     "kernel k { rom u8 t[2] = {1, 2}; output u8 o[1]; t[0] = 3; }",
     "ROM"),
    ("assign-to-param",
     "kernel k { param i32 n; output u8 o[1]; n = 3; }",
     "parameter"),
    ("subscript-arity",
     "kernel k { output u8 m[2][2]; m[0] = 1; }",
     "dimension"),
    ("float-bitwise",
     "kernel k { output u8 o[1]; f64 a; f64 b; a = a & b; }",
     "float"),
    ("float-shift",
     "kernel k { output u8 o[1]; f64 a; a = a << 2; }",
     "float"),
    ("float-bitnot",
     "kernel k { output u8 o[1]; f64 a; a = ~a; }",
     "float"),
    ("float-subscript",
     "kernel k { output u8 o[4]; f64 f; o[f] = 1; }",
     "integer"),
    ("duplicate-declaration",
     "kernel k { output u8 o[1]; u8 x; i32 x; }",
     "duplicate"),
    ("rom-without-init",
     "kernel k { rom u8 t[4]; output u8 o[1]; }",
     "initial"),
    ("init-size-mismatch",
     "kernel k { output u8 o[1]; u8 a[4] = {1, 2}; }",
     "4 elements"),
    ("float-init-in-int-array",
     "kernel k { output u8 o[1]; u8 a[2] = {1, 2.5}; }",
     "float literal"),
    ("array-read-without-subscript",
     "kernel k { output u8 o[4]; u8 x; x = o + 1; }",
     "subscript"),
    ("scalar-subscripted",
     "kernel k { output u8 o[1]; u8 x; u8 y; y = x[0]; }",
     "scalar"),
    ("assign-to-array",
     "kernel k { output u8 o[4]; o = 3; }",
     "array"),
    ("assign-to-undeclared",
     "kernel k { output u8 o[1]; zz = 3; }",
     "zz"),
    ("loop-var-is-param",
     "kernel k { param i32 i; output u8 o[4];\n"
     "  for (i = 0; i < 4; i++) { o[0] = 1; } }",
     "parameter"),
    ("loop-var-wrong-type",
     "kernel k { output u8 o[4]; u8 i;\n"
     "  for (i = 0; i < 4; i++) { o[0] = 1; } }",
     "i32"),
    ("unterminated-string",
     'kernel "oops { output u8 o[1]; }',
     "unterminated"),
    ("unterminated-comment",
     "kernel k { /* output u8 o[1]; }",
     "unterminated"),
]


@pytest.mark.parametrize("name, src, fragment",
                         CASES, ids=[c[0] for c in CASES])
def test_diagnostic(name, src, fragment):
    with pytest.raises(LangError) as exc:
        compile_source(src, filename="bad.lang")
    msg = str(exc.value)
    assert fragment in msg, msg
    assert msg.startswith("bad.lang:"), msg      # file:line:col prefix
    head = msg.split(":", 3)
    assert head[1].isdigit() and head[2].isdigit(), msg
    assert "^" in msg, msg                       # caret snippet


def test_langerror_is_reproerror():
    # front-end failures flow through the CLI's existing error handling
    assert issubclass(LangError, ReproError)


def test_fields_carry_position():
    src = "kernel k { output u8 o[1];\n  u8 x;\n  x = yy;\n}"
    with pytest.raises(LangError) as exc:
        compile_source(src, filename="f.lang")
    err = exc.value
    assert err.filename == "f.lang"
    assert err.line == 3
    assert err.col >= 7
    assert "x = yy;" in err.snippet


def test_validation_failures_become_langerrors():
    # possibly-undefined read is caught by ir.validate, rewrapped with a span
    src = "kernel k { output u8 o[1]; u8 x; u8 y; x = y; }"
    with pytest.raises(LangError):
        compile_source(src)
