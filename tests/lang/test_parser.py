"""Unit tests for the ``repro.lang`` parser (source → front-end AST)."""

import pytest

from repro.errors import LangError
from repro.ir.types import I32, U8
from repro.lang import parse_program
from repro.lang import ast as A


MINIMAL = """
kernel k {
  output u8 out[4];
  u8 x;
  for (i = 0; i < 4; i++) {
    x = 1;
    out[i] = x;
  }
}
"""


def first_stmt(src):
    return parse_program(src).body[0]


def expr_of(text, decls="u8 x; u8 y; u8 z;"):
    src = f"kernel k {{ output u8 o[1]; {decls} x = {text}; }}"
    unit = parse_program(src)
    for s in unit.body:
        if isinstance(s, A.LAssign):
            return s.expr
    raise AssertionError("no assignment parsed")


class TestStructure:
    def test_minimal_kernel(self):
        unit = parse_program(MINIMAL)
        assert unit.name == "k"
        assert [a.name for a in unit.arrays] == ["out"]
        assert unit.arrays[0].output and not unit.arrays[0].rom
        assert isinstance(unit.body[0], A.LFor)

    def test_quoted_kernel_name(self):
        unit = parse_program('kernel "fig 2.1" { output u8 o[1]; }')
        assert unit.name == "fig 2.1"

    def test_decl_kinds(self):
        unit = parse_program("""
        kernel k {
          param i32 n;
          rom u8 lut[2] = { 1, 2 };
          output i32 out[4];
          i32 in0[4] = { 0, 1, 2, 3 };
          f64 acc = 0.5;
        }
        """)
        assert [p.name for p in unit.params] == ["n"]
        names = {a.name: a for a in unit.arrays}
        assert names["lut"].rom and list(names["lut"].init) == [1, 2]
        assert names["out"].output and names["out"].init is None
        assert list(names["in0"].init) == [0, 1, 2, 3]
        assert unit.scalars[0].name == "acc"
        assert unit.scalars[0].init is not None

    def test_multidim_array(self):
        unit = parse_program(
            "kernel k { output u8 m[2][3]; u8 x; x = m[1][2]; }")
        assert list(unit.arrays[0].shape) == [2, 3]
        ld = unit.body[0].expr
        assert isinstance(ld, A.LIndex) and len(ld.index) == 2

    def test_pragma_kernel_marks_loop(self):
        unit = parse_program("""
        kernel k {
          output u8 o[2];
          u8 a;
          for (i = 0; i < 2; i++) {
            a = 0;
            #pragma kernel
            for (j = 0; j < 3; j++) { a = a + 1; }
            o[i] = a;
          }
        }
        """)
        outer = unit.body[0]
        inner = next(s for s in outer.body if isinstance(s, A.LFor))
        assert not outer.kernel and inner.kernel

    def test_for_step_forms(self):
        def loop(hdr):
            return first_stmt(
                f"kernel k {{ output u8 o[9]; for ({hdr}) {{ o[0] = 1; }} }}")
        assert loop("i = 0; i < 8; i++").step == 1
        assert loop("i = 8; i > 0; i--").step == -1
        assert loop("i = 0; i < 8; i += 2").step == 2
        assert loop("i = 8; i > 0; i -= 2").step == -2

    def test_if_else_chain(self):
        unit = parse_program("""
        kernel k {
          output u8 o[1];
          u8 x;
          if (x < 1) { x = 0; } else if (x < 2) { x = 1; } else { x = 2; }
        }
        """)
        top = unit.body[0]
        assert isinstance(top, A.LIf)
        assert isinstance(top.orelse[0], A.LIf)


class TestExpressions:
    def test_precedence_ladder(self):
        e = expr_of("x | y ^ z & x")
        assert isinstance(e, A.LBin) and e.op == "or"
        assert e.rhs.op == "xor" and e.rhs.rhs.op == "and"

    def test_arith_binds_tighter_than_shift(self):
        e = expr_of("x + y << 2")
        assert e.op == "shl" and e.lhs.op == "add"

    def test_parens_override(self):
        e = expr_of("x * (y + z)")
        assert e.op == "mul" and e.rhs.op == "add"

    def test_ternary_lowest(self):
        e = expr_of("x < y ? x : y + 1")
        assert isinstance(e, A.LSelect)
        assert isinstance(e.cond, A.LBin) and e.cond.op == "lt"

    def test_cast(self):
        e = expr_of("(i32) x")
        assert isinstance(e, A.LCast) and e.target is I32

    def test_parenthesized_var_is_not_cast(self):
        e = expr_of("(x)")
        assert isinstance(e, A.LVar)

    def test_min_max_calls(self):
        e = expr_of("min(x, max(y, 3))")
        assert isinstance(e, A.LCall) and e.fn == "min"
        assert isinstance(e.args[1], A.LCall) and e.args[1].fn == "max"

    def test_negative_literal_folds(self):
        e = expr_of("-5")
        assert isinstance(e, A.LLit) and e.value == -5

    def test_negated_expression_stays_unop(self):
        e = expr_of("-(5)")
        assert isinstance(e, A.LUn) and e.op == "neg"
        e = expr_of("-x")
        assert isinstance(e, A.LUn) and e.op == "neg"

    def test_typed_literal_suffix(self):
        e = expr_of("255u8")
        assert isinstance(e, A.LLit) and e.suffix is U8

    def test_bool_literals(self):
        e = expr_of("true ? x : y")
        assert isinstance(e.cond, A.LLit) and e.cond.value is True


class TestContextualKeywords:
    def test_rom_as_array_name(self):
        # the randgen nests name their lookup table literally "rom"
        unit = parse_program("""
        kernel k {
          rom u8 rom[2] = { 1, 2 };
          output u8 o[1];
          u8 x;
          x = rom[0];
        }
        """)
        assert unit.arrays[0].name == "rom" and unit.arrays[0].rom

    def test_output_as_scalar_name(self):
        unit = parse_program(
            "kernel k { output u8 o[1]; u8 output; output = 1; }")
        assert unit.scalars[0].name == "output"

    def test_hard_keywords_rejected(self):
        with pytest.raises(LangError, match="reserved"):
            parse_program("kernel k { output u8 o[1]; u8 for; }")


class TestParseErrors:
    @pytest.mark.parametrize("src, fragment", [
        ("kernel", "expected"),
        ("kernel k { output u8 o[1]; x = ; }", "expected"),
        ("kernel k { output u8 o[1]; for (i = 0; j < 4; i++) {} }", "i"),
        ("kernel k { output u8 o[1]; for (i = 0; i < 4; i--) {} }", ""),
        ("kernel k { output u8 o[1]; u8 x; x = min(x); }", "2 argument"),
        ("kernel k { output u8 o[1]; u8 x; x = hypot(x, x); }", "min"),
    ])
    def test_raises_langerror(self, src, fragment):
        with pytest.raises(LangError) as exc:
            parse_program(src)
        assert fragment in str(exc.value)
        assert ":" in str(exc.value)  # has file:line:col

    def test_missing_semicolon_points_at_line(self):
        src = "kernel k {\n  output u8 o[1];\n  u8 x;\n  x = 1\n}\n"
        with pytest.raises(LangError) as exc:
            parse_program(src)
        assert ":5:" in str(exc.value) or ":4:" in str(exc.value)
