"""Round-trip property: ``compile_source(program_to_str(p))`` reconstructs
an equivalent program, for the hand-built workloads and for the random
generators (satellite of the printer rewrite — the printer's output *is*
the source language)."""

import random

import numpy as np
import pytest

from repro.ir.interp import run_program
from repro.ir.printer import program_to_str
from repro.ir.randgen import (
    RandConfig, random_program, random_squashable_nest,
)
from repro.lang import compile_source, programs_equivalent
from repro.workloads import table_1_1_programs, table_6_1_benchmarks

from tests.conftest import build_fig21, build_fig41


def roundtrip(prog):
    text = program_to_str(prog)
    back = compile_source(text, filename=f"<printed:{prog.name}>")
    assert programs_equivalent(prog, back), \
        f"round-trip changed {prog.name}:\n{text}"
    return back


class TestWorkloadRoundTrip:
    def test_fig21(self):
        roundtrip(build_fig21())

    def test_fig41(self):
        roundtrip(build_fig41())

    @pytest.mark.parametrize(
        "bm", table_6_1_benchmarks(), ids=lambda bm: bm.name)
    def test_table_6_1(self, bm):
        roundtrip(bm.build(**bm.small_kwargs))

    @pytest.mark.parametrize(
        "bm", table_1_1_programs(), ids=lambda bm: bm.name)
    def test_table_1_1(self, bm):
        roundtrip(bm.build(**bm.eval_kwargs))

    def test_semantics_preserved(self):
        # structural equivalence is the strong check; run one program on
        # both sides anyway to pin the interpreter-visible behavior
        prog = build_fig41()
        back = roundtrip(prog)
        a = run_program(prog, params={"k": 3})
        b = run_program(back, params={"k": 3})
        assert np.array_equal(a.arrays["out"], b.arrays["out"])


class TestRandomRoundTrip:
    def test_squashable_nests(self):
        rng = random.Random(2026)
        for _ in range(60):
            prog, _outer = random_squashable_nest(rng)
            roundtrip(prog)

    def test_random_programs(self):
        rng = random.Random(7)
        for _ in range(60):
            roundtrip(random_program(rng))

    def test_random_programs_with_floats(self):
        rng = random.Random(11)
        cfg = RandConfig(allow_float=True, max_depth=2)
        for _ in range(40):
            roundtrip(random_program(rng, cfg))

    def test_idempotent_printing(self):
        # print -> parse -> print is a fixed point
        rng = random.Random(3)
        for _ in range(10):
            prog, _ = random_squashable_nest(rng)
            once = program_to_str(prog)
            again = program_to_str(compile_source(once))
            assert once == again
