"""CLI coverage for the source-language front end: ``repro compile`` and
the ``--source`` axis of ``repro explore`` / ``repro tables``."""

import pathlib

import pytest

from repro.cli import main

KERNEL_DIR = pathlib.Path(__file__).resolve().parents[2] \
    / "src" / "repro" / "lang" / "kernels"

GOOD = """kernel cli_demo {
  param i32 k;
  output u8 out[4];
  u8 a;
  for (i = 0; i < 4; i++) {
    a = 1;
    #pragma kernel
    for (j = 0; j < 3; j++) { a = (u8) (a + k); }
    out[i] = a;
  }
}
"""


@pytest.fixture
def demo(tmp_path):
    p = tmp_path / "demo.lang"
    p.write_text(GOOD)
    return p


class TestCompileCommand:
    def test_compile_committed_kernel(self, capsys):
        path = str(KERNEL_DIR / "simple-fg.lang")
        assert main(["compile", path, "--ds", "2"]) == 0
        out = capsys.readouterr().out
        assert "kernel 'simple-fg'" in out
        assert "squash(2) verified" in out
        assert "II=" in out

    def test_unbound_params_skip_functional_check(self, demo, capsys):
        assert main(["compile", str(demo)]) == 0
        out = capsys.readouterr().out
        assert "functional check skipped (unbound params: k)" in out

    def test_bound_params_verify(self, demo, capsys):
        assert main(["compile", str(demo), "--param", "k=3"]) == 0
        assert "verified" in capsys.readouterr().out

    def test_show_ir_round_trips(self, demo, capsys):
        assert main(["compile", str(demo), "--show-ir",
                     "--param", "k=1"]) == 0
        assert "kernel cli_demo {" in capsys.readouterr().out

    def test_bad_param_exits_1(self, demo, capsys):
        assert main(["compile", str(demo), "--param", "zz=1"]) == 1
        assert "declared params: k" in capsys.readouterr().err

    def test_missing_file_exits_1(self, tmp_path, capsys):
        assert main(["compile", str(tmp_path / "nope.lang")]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_syntax_error_exits_1_with_position(self, tmp_path, capsys):
        p = tmp_path / "bad.lang"
        p.write_text("kernel k {\n  output u8 o[1]\n}\n")
        assert main(["compile", str(p)]) == 1
        err = capsys.readouterr().err
        assert "bad.lang:" in err and "^" in err

    def test_no_kernel_pragma_exits_1(self, tmp_path, capsys):
        p = tmp_path / "flat.lang"
        p.write_text("kernel k { output u8 o[2];\n"
                     "  for (i = 0; i < 2; i++) { o[i] = 1; } }\n")
        assert main(["compile", str(p)]) == 1
        assert "#pragma kernel" in capsys.readouterr().err


class TestSourceAxis:
    def test_explore_with_source(self, tmp_path, capsys):
        path = str(KERNEL_DIR / "simple-fg.lang")
        assert main(["explore", "--source", path, "--factors", "2",
                     "--variants", "original", "squash",
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert "explored 2 designs" in out

    def test_explore_without_kernel_or_source_exits_2(self, capsys):
        assert main(["explore", "--factors", "2"]) == 2
        assert "--kernel or --source" in capsys.readouterr().err

    def test_tables_with_source(self, capsys):
        path = str(KERNEL_DIR / "simple-fg.lang")
        assert main(["tables", "6.2", "--factors", "2",
                     "--source", path, "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "simple-fg" in out or "lang:" in out
