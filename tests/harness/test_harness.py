"""Tests for the experiment harness (rendering + runners)."""

import pytest

from repro.harness import (
    clear_caches, figure_series, format_fig_2_4, format_figure,
    format_table_1_1, format_table_6_1, format_table_6_2, format_table_6_3,
    render_series, render_table, render_timeline, run_fig_2_4,
    run_table_1_1, run_table_6_1, run_table_6_2, run_table_6_3,
)
from repro.harness.experiments import _decode_target


class TestRendering:
    def test_render_table_alignment(self):
        text = render_table(["name", "v"], [["alpha", 1], ["b", 22.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines[:3])) == 1  # aligned

    def test_render_table_title(self):
        text = render_table(["a"], [[1]], title="T")
        assert text.startswith("T\n")

    def test_render_series_bars(self):
        text = render_series("fig", ["x", "y"], {"k": [1.0, 2.0]})
        assert text.count("#") > 0
        assert "k" in text and "2.00" in text

    def test_render_timeline(self):
        text = render_timeline("t", {"op": [0, -1, 1, -1]})
        assert "|0.1.|" in text


class TestTargetSpecs:
    def test_plain(self):
        assert _decode_target("acev").mem_ports == 2

    def test_ports_modifier(self):
        assert _decode_target("acev::ports=1").mem_ports == 1

    def test_reg_rows_modifier(self):
        t = _decode_target("acev::reg_rows=0.5")
        assert t.library.reg_rows == 0.5

    def test_combined_modifiers(self):
        t = _decode_target("acev::ports=4,reg_rows=0.25")
        assert t.mem_ports == 4 and t.library.reg_rows == 0.25


class TestRunners:
    @pytest.fixture(scope="class")
    def sweep(self):
        # small factor set: fast, still exercises every code path
        return run_table_6_2(factors=(2,))

    def test_sweep_covers_all_kernels(self, sweep):
        assert set(sweep) == {"skipjack-mem", "skipjack-hw", "des-mem",
                              "des-hw", "iir"}

    def test_sweep_cached(self, sweep):
        again = run_table_6_2(factors=(2,))
        assert again is sweep

    def test_format_table_6_2(self, sweep):
        text = format_table_6_2(sweep)
        assert "II (cycles)" in text and "skipjack-mem" in text

    def test_table_6_3_normalization(self, sweep):
        norm = run_table_6_3(sweep)
        for kernel, pts in norm.items():
            assert pts[0].speedup == pytest.approx(1.0)
            assert pts[0].area_factor == pytest.approx(1.0)
        text = format_table_6_3(norm)
        assert "Speedup/Area" in text

    def test_figure_series_labels(self, sweep):
        norm = run_table_6_3(sweep)
        title, labels, series = figure_series("6.3", norm)
        assert labels[0] == "original" and "squash(2)" in labels
        assert set(series) == set(sweep)
        for fig in ("6.1", "6.2", "6.4"):
            assert format_figure(fig, norm)

    def test_table_6_1(self):
        text = format_table_6_1(run_table_6_1())
        assert "Skipjack" in text and "IIR" in text

    def test_fig_2_4(self):
        data = run_fig_2_4(ds=2, horizon=12)
        text = format_fig_2_4(data)
        assert "jam" in text and "squash" in text
        assert data["squash"][0].ii == 1


class TestSweepCaching:
    """The persistent-cache rewiring of the Table 6.2 sweep."""

    def test_clear_caches_forces_recompute_same_artifact(self):
        s1 = run_table_6_2(factors=(2,))
        clear_caches()
        s2 = run_table_6_2(factors=(2,))
        assert s2 is not s1  # memo really dropped
        assert format_table_6_2(s2) == format_table_6_2(s1)

    def test_persistent_cache_survives_memo_clear(self):
        from repro.harness import experiments
        run_table_6_2(factors=(2,))
        experiments._SWEEP_MEMO.clear()  # simulate a fresh process
        from repro.explore import ResultCache
        assert len(ResultCache()) > 0
        s2 = run_table_6_2(factors=(2,))
        assert set(s2) == {"skipjack-mem", "skipjack-hw", "des-mem",
                           "des-hw", "iir"}
