"""Golden-output guard: the staged pipeline must reproduce the seed
compiler's Table 6.2/6.3 text byte for byte under the default scheduler.

The fixtures under ``tests/data/`` were captured from the pre-pipeline
compiler (five hand-rolled ``compile_*`` bodies, no shared analysis) at
``--factors 2``.  Any drift here means the refactor changed a design
point, not just the code shape.
"""

import pathlib

from repro.harness import (
    clear_caches, format_table_6_2, format_table_6_3, run_table_6_2,
    run_table_6_3,
)

DATA = pathlib.Path(__file__).resolve().parents[1] / "data"


def test_table_6_2_byte_identical_to_seed():
    clear_caches()
    sweep = run_table_6_2(factors=(2,))
    golden = (DATA / "golden_table_6_2_f2.txt").read_text()
    assert format_table_6_2(sweep) == golden


def test_table_6_3_byte_identical_to_seed():
    sweep = run_table_6_2(factors=(2,))
    norm = run_table_6_3(sweep)
    golden = (DATA / "golden_table_6_3_f2.txt").read_text()
    assert format_table_6_3(norm) == golden


def test_backtrack_sweep_is_separate_memo_entry():
    default = run_table_6_2(factors=(2,))
    bt = run_table_6_2(factors=(2,), scheduler="backtrack")
    assert bt is not default
    for kernel, vs in bt.items():
        # same baseline, pipelined II never worse under backtracking
        assert vs.original.ii == default[kernel].original.ii
        assert vs.pipelined.ii <= default[kernel].pipelined.ii
