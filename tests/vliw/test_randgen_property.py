"""Property test: random squashable nests on ``acev`` *and* ``vliw4``.

For generator-produced kernels (:func:`repro.ir.randgen.
random_squashable_nest`) both backends must (a) produce schedules that
pass their own simulate checkers — the generic resource replay for
timing, the VLIW replay for bundles — and (b) compute exactly the IR
interpreter's values.  The fast tier samples a few seeds; the ``slow``
tier (non-blocking CI job, like the exact oracle's) widens the seed
space and the machine shapes.
"""

import random

import numpy as np
import pytest

from repro.analysis.loops import trip_count
from repro.core.squash import analyze_nest
from repro.hw.schedulers import scheduler_by_name
from repro.hw.simulate import simulate_modulo
from repro.ir.randgen import SquashNestSpec, random_squashable_nest
from repro.nimble.target import decode_target
from repro.vliw.simulate import interpreter_reference, random_live_ins, \
    vliw_replay

SPECS = ("acev", "vliw4")


def _check_nest(seed, spec, scheduler="modulo", nest_spec=None):
    rng = random.Random(seed)
    prog, outer = random_squashable_nest(rng, nest_spec)
    from repro.analysis.loops import LoopNest, find_loop_nests
    nest = next(n for n in find_loop_nests(prog) if n.outer is outer)
    target = decode_target(spec)
    work, w_nest, ssa, dfg, _, check = analyze_nest(
        prog, nest, 1, delay_fn=target.library.delay)
    sched = scheduler_by_name(scheduler).schedule(dfg, target.library)

    # (a) the backend's own dynamic checker
    sim = simulate_modulo(dfg, target.library, sched, iterations=6)
    assert sim.ok, f"seed {seed} on {spec}: {sim.violations[:3]}"
    for unit, slots in target.library.resource_slots().items():
        assert sim.resource_peaks.get(unit, 0) <= slots

    # (b) cycle-accurate value agreement with the IR interpreter
    init = random_live_ins(work, w_nest, ssa, random.Random(seed + 1))
    iters = trip_count(w_nest.inner)
    rep = vliw_replay(dfg, ssa, target.library, sched, work, iters,
                      init_regs=init, iv_step=w_nest.inner.step)
    assert rep.ok, f"seed {seed} on {spec}: {rep.violations[:3]}"
    ref = interpreter_reference(work, w_nest.inner, init)
    for name in work.arrays:
        np.testing.assert_array_equal(
            rep.arrays[name], ref.arrays[name],
            err_msg=f"seed {seed} on {spec}: array {name!r} diverged")
    carried = {x for x in check.liveness.carried if x in ssa.entry}
    for name in carried:
        assert rep.scalars[name] == ref.scalars[name], \
            f"seed {seed} on {spec}: carried {name!r} diverged"


class TestFastTier:
    @pytest.mark.parametrize("spec", SPECS)
    @pytest.mark.parametrize("seed", (2, 7, 23))
    def test_random_nests_schedule_and_agree(self, spec, seed):
        _check_nest(seed, spec)

    def test_backtrack_strategy_too(self):
        _check_nest(5, "vliw4", scheduler="backtrack")


@pytest.mark.slow
class TestExhaustiveTier:
    @pytest.mark.parametrize("spec", SPECS + ("vliw4::issue=2,alu=1,mem=1",
                                              "vliw4::mul=2,regs=128"))
    @pytest.mark.parametrize("seed", tuple(range(24)))
    def test_wide_seed_sweep(self, spec, seed):
        _check_nest(seed, spec)

    @pytest.mark.parametrize("seed", tuple(range(8)))
    def test_bigger_nests(self, seed):
        _check_nest(seed, "vliw4",
                    nest_spec=SquashNestSpec(m=8, n=7, n_state=4, n_ops=10))
