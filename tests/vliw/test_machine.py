"""The VLIW machine description and its generic resource hooks."""

import pytest

from repro.core.dfg import DFGNode
from repro.errors import ReproError
from repro.hw import ACEV_LIBRARY, res_mii
from repro.hw.ops import OpSpec
from repro.ir.types import U32
from repro.vliw.machine import VLIW4_LIBRARY, VLIWOperatorLibrary, op_class


def _node(kind, op=None, array=None):
    return DFGNode(0, kind, U32, op=op, array=array)


class TestOpClasses:
    def test_memory_ops_issue_on_mem_units(self):
        for kind in ("load", "store", "rom_load"):
            assert op_class(VLIW4_LIBRARY, _node(kind, array="a")) == "mem"

    def test_rom_lookup_is_a_scratchpad_load_on_vliw(self):
        """The FPGA's free on-chip ROM becomes a real load: latency and a
        MEM slot.  (This is why des-hw loses its des-mem edge on vliw4.)"""
        rom = _node("rom_load", array="t")
        assert VLIW4_LIBRARY.node_resources(rom) == ("issue", "mem")
        assert VLIW4_LIBRARY.delay(rom) == VLIW4_LIBRARY.table["load"].delay
        # ...while ACEV keeps it port-free
        assert ACEV_LIBRARY.node_resources(rom) == ()

    def test_multiply_class(self):
        for op in ("mul", "div", "mod"):
            assert op_class(VLIW4_LIBRARY, _node("binop", op=op)) == "mul"

    def test_alu_class(self):
        for op in ("add", "xor", "shl", "lt"):
            assert op_class(VLIW4_LIBRARY, _node("binop", op=op)) == "alu"
        assert op_class(VLIW4_LIBRARY, _node("select")) == "alu"
        assert op_class(VLIW4_LIBRARY, _node("inc", op="add")) == "alu"

    def test_casts_and_non_operators_issue_nowhere(self):
        assert VLIW4_LIBRARY.node_resources(_node("cast")) == ()
        assert VLIW4_LIBRARY.node_resources(_node("reg")) == ()
        assert VLIW4_LIBRARY.node_resources(_node("const")) == ()

    def test_every_issuing_op_takes_an_issue_slot(self):
        assert VLIW4_LIBRARY.node_resources(_node("binop", op="add")) == \
            ("issue", "alu")
        assert VLIW4_LIBRARY.node_resources(_node("binop", op="mul")) == \
            ("issue", "mul")


class TestResourceModel:
    def test_slots_describe_the_machine(self):
        assert VLIW4_LIBRARY.resource_slots() == \
            {"issue": 4, "alu": 2, "mul": 1, "mem": 2}

    def test_acev_is_the_degenerate_single_resource_case(self):
        assert ACEV_LIBRARY.resource_slots() == {"mem": 2}
        assert ACEV_LIBRARY.node_resources(_node("load", array="a")) == \
            ("mem",)
        assert ACEV_LIBRARY.node_resources(_node("binop", op="add")) == ()

    def test_res_mii_takes_the_scarcest_resource(self):
        import repro.core.dfg as dfgmod
        g = dfgmod.DFG()
        for _ in range(6):
            n = g.add_node(kind="binop", ty=U32, op="mul")
        # 6 muls on 1 MUL unit: ResMII 6 even though issue width fits 2/cy
        assert res_mii(g, VLIW4_LIBRARY) == 6
        # the same graph on ACEV is unconstrained (spatial multipliers)
        assert res_mii(g, ACEV_LIBRARY) == 1

    def test_issue_width_bounds_res_mii(self):
        import repro.core.dfg as dfgmod
        g = dfgmod.DFG()
        for _ in range(9):
            g.add_node(kind="binop", ty=U32, op="add")
        wide = VLIW4_LIBRARY.with_machine(alu_slots=9)
        # 9 single-cycle ops over a 4-wide machine: ceil(9/4) = 3
        assert res_mii(g, wide) == 3


class TestValidation:
    def test_machine_shape_is_validated(self):
        with pytest.raises(ReproError, match="issue width"):
            VLIWOperatorLibrary(issue_width=0)
        with pytest.raises(ReproError, match="branch unit"):
            VLIW4_LIBRARY.with_machine(br_slots=0)
        with pytest.raises(ReproError, match="mul slot"):
            VLIW4_LIBRARY.with_machine(mul_slots=0)

    def test_with_machine_is_a_fresh_copy(self):
        wide = VLIW4_LIBRARY.with_machine(issue_width=8)
        assert wide.issue_width == 8 and VLIW4_LIBRARY.issue_width == 4
        wide.table["add"] = OpSpec(9, 9)
        assert VLIW4_LIBRARY.table["add"].delay == 1

    def test_describe_names_the_shape(self):
        text = VLIW4_LIBRARY.describe()
        assert "4-issue" in text and "64 rotating registers" in text
