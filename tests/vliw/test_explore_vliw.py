"""The VLIW backend through the exploration engine, reports, and oracle.

Proves the PR-2 registry architecture is actually retargetable: the
same `DesignSpace`/`evaluate`/Pareto/tables machinery that drives the
ACEV sweeps runs a second machine model end to end — with register
pressure surfacing as new columns and infeasible designs as structured
skips, never crashes.
"""

import pytest

from repro.explore import DesignSpace, evaluate, format_pareto
from repro.harness.experiments import format_table_6_2, run_table_6_2, \
    run_table_6_3
from repro.hw.report import DesignPoint


@pytest.fixture(scope="module")
def vliw_result():
    space = DesignSpace(kernels=("iir", "des-mem"),
                        variants=("original", "pipelined", "squash", "jam"),
                        factors=(2, 4), target_specs=("vliw4",))
    return evaluate(space.enumerate(), jobs=1)


class TestExplore:
    def test_sweep_produces_points_and_structured_skips(self, vliw_result):
        pts = vliw_result.points()
        assert pts, "no design evaluable on vliw4"
        # pressure rejections are skips with provenance, not crashes
        for s in vliw_result.skips():
            assert s.phase == "schedule"
            assert "register pressure" in s.reason

    def test_pipelined_points_carry_pressure_fields(self, vliw_result):
        for q, r in vliw_result.pairs():
            if isinstance(r, DesignPoint) and q.variant != "original":
                assert r.max_live is not None
                assert r.reg_capacity == 64
                assert r.max_live <= 64  # accepted means it fits

    def test_pareto_report_grows_a_live_column(self, vliw_result):
        text = format_pareto(vliw_result)
        assert "live" in text
        assert "/64" in text

    def test_acev_report_keeps_its_layout(self):
        space = DesignSpace(kernels=("iir",), variants=("original",
                                                        "pipelined"),
                            factors=(2,), target_specs=("acev",))
        text = format_pareto(evaluate(space.enumerate(), jobs=1))
        assert "live" not in text

    def test_mixed_target_sweep_separates_groups(self):
        space = DesignSpace(kernels=("iir",),
                            variants=("original", "pipelined"),
                            factors=(2,),
                            target_specs=("acev", "vliw4"))
        result = evaluate(space.enumerate(), jobs=1)
        text = format_pareto(result)
        assert "iir @ acev" in text and "iir @ vliw4" in text
        # the live column is per-group: the acev block keeps its
        # historical (diffable) layout even in a mixed-target run
        acev_block = text.split("iir @ acev")[1].split("iir @ vliw4")[0] \
            if text.index("iir @ acev") < text.index("iir @ vliw4") \
            else text.split("iir @ acev")[1]
        assert "live" not in acev_block


class TestTables:
    def test_table_6_2_has_maxlive_row_on_vliw(self):
        sweep = run_table_6_2(factors=(2,), target_spec="vliw4", jobs=1)
        text = format_table_6_2(sweep)
        assert "MaxLive" in text
        # rejected designs render as '-' cells instead of crashing
        norm = run_table_6_3(sweep)
        assert norm  # normalization survives partial rows

    def test_acev_table_has_no_maxlive_row(self):
        sweep = run_table_6_2(factors=(2,), target_spec="acev", jobs=1)
        assert "MaxLive" not in format_table_6_2(sweep)


class TestOracleOnVLIW:
    def test_exact_certifies_when_heuristic_meets_the_bound(self):
        from repro.core.squash import analyze_nest
        from repro.hw.schedulers import scheduler_by_name
        from repro.nimble.compiler import _kernel_program
        from repro.nimble.target import decode_target

        prog, nest = _kernel_program("skipjack-mem")
        t = decode_target("vliw4")
        _, _, _, dfg, _, _ = analyze_nest(prog, nest, 1,
                                          delay_fn=t.library.delay)
        sched = scheduler_by_name("exact").schedule(dfg, t.library)
        assert sched.certified
        assert sched.ii == max(sched.rec_mii, sched.res_mii)

    def test_pressure_floored_exact_claims_no_design_optimum(self):
        """An exact certificate under a register-pressure ``min_ii``
        floor proves minimality above the floor only — the DesignPoint
        must not advertise a certified optimal II."""
        from repro.nimble.compiler import _kernel_program
        from repro.nimble.target import decode_target
        from repro.pipeline import CompilationPipeline

        prog, nest = _kernel_program("iir")
        run = CompilationPipeline(decode_target("vliw4::regs=45"),
                                  scheduler="exact") \
            .run(prog, nest, "pipelined")
        assert run.scheduled.ii_floored
        assert run.point.exact_ii is None
        assert run.point.max_live <= 45

    def test_unfloored_exact_still_stamps_the_optimum(self):
        from repro.nimble.compiler import _kernel_program
        from repro.nimble.target import decode_target
        from repro.pipeline import CompilationPipeline

        prog, nest = _kernel_program("skipjack-mem")
        run = CompilationPipeline(decode_target("vliw4"),
                                  scheduler="exact") \
            .run(prog, nest, "pipelined")
        assert not run.scheduled.ii_floored
        assert run.point.exact_ii == run.point.ii

    def test_exact_bounds_gracefully_under_budget(self, monkeypatch):
        """On VLIW *every* operation is resource-constrained, so the
        branch space explodes; a capped budget must degrade to the
        backtracking schedule (a sound upper bound), never crash."""
        from repro.core.squash import analyze_nest
        from repro.hw.exact import exact_modulo_schedule
        from repro.hw.schedulers import backtracking_modulo_schedule
        from repro.nimble.compiler import _kernel_program
        from repro.nimble.target import decode_target

        prog, nest = _kernel_program("des-mem")
        t = decode_target("vliw4")
        _, _, _, dfg, _, _ = analyze_nest(prog, nest, 1,
                                          delay_fn=t.library.delay)
        ub = backtracking_modulo_schedule(dfg, t.library)
        sched = exact_modulo_schedule(dfg, t.library, budget=2000)
        assert sched.ii == ub.ii
        if not sched.certified:
            assert sched.fallback == "backtrack"
