"""Register-pressure accounting and the pipeline's II bump."""

import pytest

from repro.errors import ScheduleError
from repro.hw.schedulers import scheduler_by_name
from repro.nimble.compiler import _kernel_program
from repro.nimble.target import decode_target
from repro.pipeline import CompilationPipeline
from repro.vliw.pressure import register_pressure, rotating_copies


def _schedule(kernel, spec, scheduler="modulo"):
    from repro.core.squash import analyze_nest
    prog, nest = _kernel_program(kernel)
    t = decode_target(spec)
    _, _, _, dfg, _, _ = analyze_nest(prog, nest, 1,
                                      delay_fn=t.library.delay)
    sched = scheduler_by_name(scheduler).schedule(dfg, t.library)
    return dfg, t.library, sched


class TestPressureModel:
    def test_rotating_copies(self):
        assert rotating_copies(0, 4) == 0
        assert rotating_copies(3, 4) == 1
        assert rotating_copies(5, 4) == 2

    def test_stores_produce_no_live_values(self):
        """Memory-ordering edges out of stores are constraints, not data
        flow — they must not count as register lifetimes."""
        from repro.core.dfg import DFG
        from repro.hw.modulo import ModuloSchedule
        from repro.ir.types import U32
        from repro.vliw.machine import VLIW4_LIBRARY
        from repro.vliw.pressure import max_live

        g = DFG()
        a = g.add_node(kind="reg", ty=U32, name="a")
        st = g.add_node(kind="store", ty=U32, array="m")
        ld = g.add_node(kind="load", ty=U32, array="m")
        st2 = g.add_node(kind="store", ty=U32, array="m")
        g.add_edge(a, st, 0)                # data: the store consumes a
        g.add_edge(st, ld, 0, kind="mem")   # ordering only, no value
        g.add_edge(ld, st2, 0, kind="mem")  # antidependence, no value
        g.add_edge(a, a, 1)                 # invariant live-in
        sched = ModuloSchedule(
            ii=4, time={a.nid: 0, st.nid: 0, ld.nid: 8, st2.nid: 20},
            rec_mii=0, res_mii=0)
        # only the invariant register is live: the store kept 'alive'
        # until the distant load, and the load kept 'alive' until the
        # antidependent store, would each add 1
        assert max_live(g, VLIW4_LIBRARY, sched) == 1

    def test_pressure_reports_both_models(self):
        dfg, lib, sched = _schedule("iir", "vliw4")
        p = register_pressure(dfg, lib, sched)
        assert p.capacity == 64 and p.rotating
        assert 0 < p.max_live <= p.mve_registers
        assert p.required == p.max_live

    def test_non_rotating_file_pays_mve(self):
        dfg, lib, sched = _schedule("iir", "vliw4::rotating=0")
        p = register_pressure(dfg, lib, sched)
        assert not p.rotating and p.required == p.mve_registers

    def test_unbounded_capacity_always_fits(self):
        from repro.hw import ACEV_LIBRARY
        dfg, _, sched = _schedule("iir", "acev")
        p = register_pressure(dfg, ACEV_LIBRARY, sched)
        assert p.capacity is None and p.fits


class TestIIBump:
    def test_bump_lifts_ii_until_the_schedule_fits(self):
        prog, nest = _kernel_program("des-hw")
        wide = CompilationPipeline(decode_target("vliw4")) \
            .compile(prog, nest, "pipelined")
        tight = CompilationPipeline(decode_target("vliw4::regs=32")) \
            .compile(prog, nest, "pipelined")
        assert wide.max_live is not None and wide.max_live <= 64
        assert tight.max_live is not None and tight.max_live <= 32
        assert tight.ii >= wide.ii  # pressure cost is paid in II
        assert tight.reg_capacity == 32

    def test_spatial_targets_carry_no_pressure_fields(self):
        prog, nest = _kernel_program("des-hw")
        p = CompilationPipeline(decode_target("acev")) \
            .compile(prog, nest, "pipelined")
        assert p.max_live is None and p.reg_capacity is None

    def test_infeasible_pressure_is_a_schedule_reject(self):
        prog, nest = _kernel_program("iir")
        pipe = CompilationPipeline(decode_target("vliw4::regs=8"))
        with pytest.raises(ScheduleError, match="register pressure"):
            pipe.compile(prog, nest, "pipelined")

    def test_deep_squash_overflows_any_finite_file(self):
        """Squash keeps DS data sets live at once; a register file (unlike
        the FPGA's synthesized shift chains) caps the usable depth."""
        prog, nest = _kernel_program("iir")
        pipe = CompilationPipeline(decode_target("vliw4"))
        with pytest.raises(ScheduleError, match="register pressure"):
            pipe.compile(prog, nest, "squash", ds=8)

    def test_bumped_schedule_still_validates(self):
        """The accepted schedule replays cleanly through the generic
        simulator (issue slots, FU rows, dependences)."""
        prog, nest = _kernel_program("des-hw")
        run = CompilationPipeline(decode_target("vliw4::regs=32")) \
            .run(prog, nest, "pipelined")
        assert run.validated.ok
        peaks = run.validated.sim.resource_peaks
        assert peaks["issue"] <= 4 and peaks["mem"] <= 2
