"""The cycle-accurate VLIW replay, differential against the interpreter.

Every Table 6.1 kernel's inner loop is modulo-scheduled on ``vliw4``,
replayed bundle by bundle *with values*, and compared — final carried
scalars and all array contents — against the IR interpreter executing
the same loop sequentially from the same initial state.  The replay's
own invariants (issue width, unit slots, operand readiness) are checked
on the way.
"""

import random

import numpy as np
import pytest

from repro.analysis.loops import trip_count
from repro.core.squash import analyze_nest
from repro.hw.schedulers import scheduler_by_name
from repro.nimble.compiler import _kernel_program
from repro.nimble.target import decode_target
from repro.vliw.simulate import interpreter_reference, random_live_ins, \
    vliw_replay
from repro.workloads import benchmark_by_name, table_6_1_benchmarks

KERNELS = tuple(bm.name for bm in table_6_1_benchmarks())


def _differential(kernel, spec, scheduler, seed):
    bm = benchmark_by_name(kernel)
    prog, nest = _kernel_program(kernel)
    target = decode_target(spec)
    work, w_nest, ssa, dfg, _, check = analyze_nest(
        prog, nest, 1, delay_fn=target.library.delay)
    sched = scheduler_by_name(scheduler).schedule(dfg, target.library)
    init = random_live_ins(work, w_nest, ssa, random.Random(seed),
                           params=bm.params)
    iters = trip_count(w_nest.inner)
    assert iters and iters > 1

    rep = vliw_replay(dfg, ssa, target.library, sched, work, iters,
                      init_regs=init, iv_step=w_nest.inner.step)
    assert rep.ok, rep.violations[:3]

    ref = interpreter_reference(work, w_nest.inner, init, params=bm.params)
    for name in work.arrays:
        np.testing.assert_array_equal(
            rep.arrays[name], ref.arrays[name],
            err_msg=f"{kernel}@{spec}/{scheduler}: array {name!r} diverged")
    carried = {x for x in check.liveness.carried if x in ssa.entry}
    for name in carried:
        assert rep.scalars[name] == ref.scalars[name], \
            f"{kernel}@{spec}/{scheduler}: carried {name!r} diverged"
    return rep, sched, target


class TestWorkloadSuiteDifferential:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_values_match_the_interpreter(self, kernel):
        rep, sched, target = _differential(kernel, "vliw4", "modulo", 11)
        assert rep.issue_peak <= target.library.issue_width
        for unit, slots in target.library.resource_slots().items():
            assert rep.unit_peaks.get(unit, 0) <= slots

    def test_backtrack_replays_identically(self):
        _differential("des-mem", "vliw4", "backtrack", 13)

    def test_exact_replays_identically(self):
        # skipjack: the heuristic meets the MII bound, so the exact
        # strategy certifies instantly (des-mem's full branch-and-bound
        # on vliw4 is a slow-tier concern, not a value-semantics one)
        _differential("skipjack-mem", "vliw4", "exact", 13)

    def test_narrow_machine_still_correct(self):
        """Halving every unit changes the schedule, never the values."""
        _differential("skipjack-mem", "vliw4::issue=2,alu=1,mul=1,mem=1",
                      "modulo", 17)

    def test_acev_schedules_replay_through_the_same_value_layer(self):
        """The value layer is schedule-agnostic: an ACEV modulo schedule
        of the same DFG computes the same values."""
        _differential("iir", "acev", "modulo", 19)

    def test_total_cycles_and_bundles_are_reported(self):
        rep, sched, _ = _differential("iir", "vliw4", "modulo", 23)
        assert rep.ii == sched.ii
        assert rep.total_cycles == (rep.iterations - 1) * sched.ii \
            + sched.length
        assert rep.bundle_count > 0


class TestReplayCatchesBrokenSchedules:
    """Mutation checks: the replay is a real validator, not a rubber
    stamp — corrupting a legal schedule must surface violations."""

    def _parts(self):
        bm = benchmark_by_name("des-mem")
        prog, nest = _kernel_program("des-mem")
        target = decode_target("vliw4")
        work, w_nest, ssa, dfg, _, _ = analyze_nest(
            prog, nest, 1, delay_fn=target.library.delay)
        sched = scheduler_by_name("modulo").schedule(dfg, target.library)
        init = random_live_ins(work, w_nest, ssa, random.Random(3),
                               params=bm.params)
        return work, w_nest, ssa, dfg, target, sched, init

    def test_oversubscribed_bundle_is_flagged(self):
        import dataclasses
        work, w_nest, ssa, dfg, target, sched, init = self._parts()
        lib = target.library
        crowded = dataclasses.replace(
            sched, time=dict(sched.time),
            mrt=dict(sched.mrt), rt={r: dict(v) for r, v in sched.rt.items()})
        mems = [n for n in dfg.nodes if "mem" in lib.node_resources(n)]
        assert len(mems) > lib.mem_ports
        for n in mems:  # pile every memory op onto one row
            crowded.time[n.nid] = crowded.time[mems[0].nid]
        rep = vliw_replay(dfg, ssa, lib, crowded, work, 4, init_regs=init,
                          iv_step=w_nest.inner.step)
        assert any("mem issues" in v or "issue issues" in v
                   for v in rep.violations)

    def test_premature_consumption_is_flagged(self):
        import dataclasses
        work, w_nest, ssa, dfg, target, sched, init = self._parts()
        lib = target.library
        # pull one operator with a latency-bearing predecessor to cycle 0
        broken = dataclasses.replace(sched, time=dict(sched.time))
        victim = next(
            n for n in dfg.topo_order()
            if sched.time[n.nid] > 0 and n.is_operator
            and any(e.dist == 0 and lib.delay(e.src) > 0
                    for e in dfg.preds(n)))
        broken.time[victim.nid] = 0
        rep = vliw_replay(dfg, ssa, lib, broken, work, 4, init_regs=init,
                          iv_step=w_nest.inner.step)
        assert any("before its result is ready" in v
                   for v in rep.violations)
