"""REPRO_VERIFY wiring: the pipeline hooks, observation-only golden
byte-identity, and the `repro verify` / `repro lint` CLI entry points."""

import pathlib

import pytest

import repro
from repro.analysis import find_loop_nests
from repro.cli import main
from repro.harness import (
    clear_caches, format_table_6_2, format_table_6_3, run_table_6_2,
    run_table_6_3,
)
from repro.pipeline import CompilationPipeline
from tests.conftest import build_fig41

DATA = pathlib.Path(__file__).resolve().parents[1] / "data"
KERNELS = (pathlib.Path(__file__).resolve().parents[2]
           / "src" / "repro" / "lang" / "kernels")


@pytest.fixture(autouse=True)
def _fresh_caches():
    repro.clear_caches()
    yield
    repro.clear_caches()


def run_all_variants(monkeypatch, mode):
    if mode is None:
        monkeypatch.delenv("REPRO_VERIFY", raising=False)
    else:
        monkeypatch.setenv("REPRO_VERIFY", mode)
    prog = build_fig41(m=32, n=16)
    nest = find_loop_nests(prog)[0]
    pipe = CompilationPipeline()
    points = {}
    for variant, ds in [("original", 1), ("pipelined", 1),
                        ("squash", 4), ("jam", 4), ("jam+squash", 2)]:
        run = pipe.run(prog, nest, variant, ds=ds, jam=2)
        assert run.validated.ok
        points[variant] = run.point
    return points


class TestPipelineHook:
    def test_strict_mode_passes_every_variant(self, monkeypatch):
        run_all_variants(monkeypatch, "strict")

    def test_verified_points_match_unverified(self, monkeypatch):
        baseline = run_all_variants(monkeypatch, None)
        repro.clear_caches()
        strict = run_all_variants(monkeypatch, "strict")
        for variant, point in baseline.items():
            assert strict[variant] == point

    def test_verify_stage_is_timed(self, monkeypatch):
        from repro.pipeline import stage_timings

        def verify_calls():
            return stage_timings().get("verify", {}).get("calls", 0)

        before = verify_calls()
        run_all_variants(monkeypatch, "strict")
        assert verify_calls() > before

    def test_off_mode_skips_the_verify_stage(self, monkeypatch):
        from repro.pipeline import stage_timings

        def verify_calls():
            return stage_timings().get("verify", {}).get("calls", 0)

        before = verify_calls()
        run_all_variants(monkeypatch, None)
        assert verify_calls() == before


class TestGoldenByteIdentity:
    def test_strict_table_6_2_is_byte_identical(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "strict")
        clear_caches()
        sweep = run_table_6_2(factors=(2,))
        golden = (DATA / "golden_table_6_2_f2.txt").read_text()
        assert format_table_6_2(sweep) == golden
        norm = run_table_6_3(sweep)
        golden3 = (DATA / "golden_table_6_3_f2.txt").read_text()
        assert format_table_6_3(norm) == golden3


class TestCLI:
    def test_verify_command_passes_on_iir(self, capsys):
        rc = main(["verify", "--kernel", "iir",
                   "--variants", "original", "pipelined", "squash",
                   "--factors", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 failed" in out
        assert "strict mode" in out

    def test_verify_needs_a_kernel(self, capsys):
        assert main(["verify"]) == 2

    def test_lint_clean_kernel_exits_zero(self, capsys):
        path = str(KERNELS / "simple-fg.lang")
        rc = main(["lint", path, "--strict"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "clean" in out

    def test_lint_strict_fails_on_warnings(self, tmp_path, capsys):
        bad = tmp_path / "bad.lang"
        bad.write_text("""\
kernel bad {
  param i32 unused;
  output i32 out[4];
  i32 i;

  for (i = 0; i < 4; i++) {
    out[i] = i;
  }
}
""")
        assert main(["lint", str(bad)]) == 0
        assert main(["lint", str(bad), "--strict"]) == 1
        out = capsys.readouterr().out
        assert "W001" in out

    def test_lint_parse_error_exits_one(self, tmp_path, capsys):
        bad = tmp_path / "broken.lang"
        bad.write_text("kernel broken {")
        assert main(["lint", str(bad)]) == 1
        assert "E000" in capsys.readouterr().out

    def test_lint_missing_file_exits_two(self, capsys):
        assert main(["lint", "/no/such/file.lang"]) == 2
