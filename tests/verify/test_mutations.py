"""Mutation corpus for the independent verifiers.

Each test seeds one deliberate corruption into a *real* pipeline
artifact (deep-copied, so the shared analysis cache never sees the
damage) and asserts the intended checker — and, where the corruption
is surgical enough, *only* that checker — rejects it with a located
diagnostic.  The unmutated artifacts verify clean first, so a failure
here is the checker's, not the pipeline's.
"""

import copy
import dataclasses

import numpy as np
import pytest

import repro
from repro.analysis import find_loop_nests
from repro.core.dfg import DFGEdge
from repro.errors import VerifyError
from repro.ir import ProgramBuilder, U32
from repro.nimble.target import decode_target
from repro.pipeline import CompilationPipeline
from repro.verify import (
    check_dfg, check_edge_view, check_ssa, crosscheck_pressure,
    independent_rec_mii, independent_res_mii, reverify_list,
    reverify_modulo, verify_analyzed, verify_design_point,
    verify_scheduled,
)
from tests.conftest import build_fig41


def checkers(findings):
    return {f.checker for f in findings}


def build_mem_kernel():
    """An inner kernel with loads and a store, so `mem` rows fill up."""
    b = ProgramBuilder("memk")
    src = b.array("src", (64,), U32,
                  init=np.arange(64, dtype=np.uint32))
    dst = b.array("dst", (64,), U32, output=True)
    acc = b.local("acc", U32)
    with b.loop("i", 0, 8) as i:
        b.assign(acc, 0)
        with b.loop("j", 0, 4, kernel=True) as j:
            b.assign(acc, acc + src[i * 8 + 2 * j] + src[i * 8 + 2 * j + 1])
            dst[i * 4 + j] = acc
    return b.build()


@pytest.fixture(scope="module")
def squash_run():
    """fig41 squash(4) on the default (acev) target, plus its library."""
    repro.clear_caches()
    prog = build_fig41(m=32, n=16)
    nest = find_loop_nests(prog)[0]
    pipe = CompilationPipeline()
    run = pipe.run(prog, nest, "squash", ds=4)
    return run, pipe.target.library


@pytest.fixture(scope="module")
def list_run():
    repro.clear_caches()
    prog = build_fig41(m=32, n=16)
    nest = find_loop_nests(prog)[0]
    pipe = CompilationPipeline()
    run = pipe.run(prog, nest, "original")
    return run, pipe.target.library


@pytest.fixture(scope="module")
def mem_run():
    """A pipelined schedule that actually occupies `mem` rows."""
    repro.clear_caches()
    prog = build_mem_kernel()
    nest = find_loop_nests(prog)[0]
    pipe = CompilationPipeline()
    run = pipe.run(prog, nest, "pipelined")
    return run, pipe.target.library


@pytest.fixture(scope="module")
def vliw_run():
    """fig41 pipelined on vliw4: finite register file -> pressure info."""
    repro.clear_caches()
    prog = build_fig41(m=32, n=16)
    nest = find_loop_nests(prog)[0]
    pipe = CompilationPipeline(decode_target("vliw4"))
    run = pipe.run(prog, nest, "squash", ds=2)
    return run, pipe.target.library


# ---------------------------------------------------------------------------
# Baseline: the real artifacts are clean
# ---------------------------------------------------------------------------

class TestUnmutatedClean:
    def test_analyzed_artifact_is_clean(self, squash_run):
        run, lib = squash_run
        a = run.analyzed
        assert check_dfg(a.dfg, lib) == []
        assert check_ssa(a.ssa) == []
        assert a.edges is not None  # squash staging relaxes distances
        assert check_edge_view(a.dfg, a.edges) == []
        verify_analyzed(a, lib, strict=True)

    def test_modulo_schedule_is_clean(self, squash_run):
        run, lib = squash_run
        s = run.scheduled
        assert reverify_modulo(s.analyzed.dfg, lib, s.schedule,
                               s.analyzed.edges) == []
        verify_scheduled(s, lib, strict=True)

    def test_list_schedule_is_clean(self, list_run):
        run, lib = list_run
        s = run.scheduled
        assert reverify_list(s.analyzed.dfg, lib, s.schedule) == []
        verify_scheduled(s, lib, strict=True)

    def test_accepted_ii_meets_independent_bounds(self, squash_run):
        run, lib = squash_run
        a = run.analyzed
        ii = run.scheduled.schedule.ii
        assert ii >= independent_rec_mii(a.dfg, lib.delay, a.edges)
        assert ii >= independent_res_mii(a.dfg, lib)


# ---------------------------------------------------------------------------
# DFG mutations
# ---------------------------------------------------------------------------

class TestDFGMutations:
    def test_shuffled_node_table(self, squash_run):
        run, lib = squash_run
        dfg = copy.deepcopy(run.analyzed.dfg)
        dfg.nodes[0], dfg.nodes[1] = dfg.nodes[1], dfg.nodes[0]
        findings = check_dfg(dfg, lib)
        assert checkers(findings) == {"dfg.node-index"}
        assert len(findings) == 2
        assert "index 0" in findings[0].message

    def test_negative_edge_distance(self, squash_run):
        run, lib = squash_run
        dfg = copy.deepcopy(run.analyzed.dfg)
        dfg.edges[0].dist = -1
        findings = check_dfg(dfg, lib)
        assert checkers(findings) == {"dfg.edge-distance"}
        assert "-1" in findings[0].message

    def test_unknown_edge_kind(self, squash_run):
        run, lib = squash_run
        dfg = copy.deepcopy(run.analyzed.dfg)
        dfg.edges[0].kind = "ctrl"
        findings = check_dfg(dfg, lib)
        assert checkers(findings) == {"dfg.edge-kind"}
        assert "'ctrl'" in findings[0].message

    def test_foreign_edge_endpoint(self, squash_run):
        run, lib = squash_run
        dfg = copy.deepcopy(run.analyzed.dfg)
        # a structurally identical clone is still a *different* node
        dfg.edges[0].src = copy.deepcopy(dfg.edges[0].src)
        findings = check_dfg(dfg, lib)
        assert checkers(findings) == {"dfg.edge-endpoint"}
        assert "source node" in findings[0].message

    def test_intra_iteration_reg_backedge(self, squash_run):
        run, lib = squash_run
        dfg = copy.deepcopy(run.analyzed.dfg)
        carried = [e for e in dfg.edges
                   if e.dst.kind == "reg" and e.dist >= 1]
        if not carried:  # fall back: forge a reg destination
            carried = [e for e in dfg.edges if e.dist >= 1]
            carried[0].dst.kind = "reg"
        carried[0].dist = 0
        findings = check_dfg(dfg)
        assert "dfg.reg-backedge" in checkers(findings)
        assert "loop-carried" in str(findings[0])

    def test_distance_zero_cycle(self, squash_run):
        run, lib = squash_run
        dfg = copy.deepcopy(run.analyzed.dfg)
        e = next(e for e in dfg.edges
                 if e.dist == 0 and e.src is not e.dst
                 and e.src.kind != "reg")
        dfg.edges.append(DFGEdge(e.dst, e.src, 0, "data"))
        findings = check_dfg(dfg, lib)
        assert "dfg.acyclic" in checkers(findings)
        assert "cycle" in findings[-1].message

    def test_defs_points_outside_graph(self, squash_run):
        run, lib = squash_run
        dfg = copy.deepcopy(run.analyzed.dfg)
        dfg.defs["ghost@99"] = copy.deepcopy(dfg.nodes[0])
        findings = check_dfg(dfg, lib)
        assert checkers(findings) == {"dfg.defs"}
        assert findings[0].where == "ghost@99"

    def test_unknown_operator_spec(self, squash_run):
        run, lib = squash_run
        dfg = copy.deepcopy(run.analyzed.dfg)
        n = next(n for n in dfg.nodes if n.kind == "binop")
        n.op = "frobnicate"
        findings = check_dfg(dfg, lib)
        assert "dfg.operator-spec" in checkers(findings)


# ---------------------------------------------------------------------------
# SSA mutations
# ---------------------------------------------------------------------------

class TestSSAMutations:
    def test_duplicated_definition(self, squash_run):
        run, _ = squash_run
        ssa = copy.deepcopy(run.analyzed.ssa)
        from repro.ir.nodes import Assign
        dup = next(s for s in ssa.stmts if isinstance(s, Assign))
        ssa.stmts.append(copy.deepcopy(dup))
        findings = check_ssa(ssa)
        assert checkers(findings) == {"ssa.single-def"}
        assert dup.var in findings[0].message

    def test_use_before_def(self, squash_run):
        run, _ = squash_run
        ssa = copy.deepcopy(run.analyzed.ssa)
        ssa.stmts.reverse()
        findings = check_ssa(ssa)
        assert "ssa.use-before-def" in checkers(findings)
        assert "before any definition" in findings[0].message

    def test_undefined_exit_version(self, squash_run):
        run, _ = squash_run
        ssa = copy.deepcopy(run.analyzed.ssa)
        ssa.exit["zz"] = "zz@7"
        findings = check_ssa(ssa)
        assert checkers(findings) == {"ssa.exit"}
        assert findings[0].where == "zz@7"

    def test_missing_version_type(self, squash_run):
        run, _ = squash_run
        ssa = copy.deepcopy(run.analyzed.ssa)
        victim = next(iter(ssa.types))
        del ssa.types[victim]
        findings = check_ssa(ssa)
        assert checkers(findings) == {"ssa.types"}
        assert findings[0].where == victim


# ---------------------------------------------------------------------------
# Edge-view mutations
# ---------------------------------------------------------------------------

class TestEdgeViewMutations:
    def test_dropped_dependence(self, squash_run):
        run, _ = squash_run
        a = run.analyzed
        view = list(a.edges)
        view.pop()
        findings = check_edge_view(a.dfg, view)
        assert checkers(findings) == {"view.edge-set"}
        assert "dropped" in findings[0].message

    def test_invented_dependence(self, squash_run):
        run, _ = squash_run
        a = run.analyzed
        view = list(a.edges) + [a.edges[0]]
        findings = check_edge_view(a.dfg, view)
        assert checkers(findings) == {"view.edge-set"}
        assert "invented" in findings[0].message

    def test_negative_relaxed_distance(self, squash_run):
        run, _ = squash_run
        a = run.analyzed
        s, d, _ = a.edges[0]
        view = [(s, d, -2)] + list(a.edges)[1:]
        findings = check_edge_view(a.dfg, view)
        assert checkers(findings) == {"view.distance"}

    def test_verify_analyzed_raises_with_findings(self, squash_run):
        run, lib = squash_run
        a = copy.deepcopy(run.analyzed)
        a.dfg.edges[0].dist = -1
        with pytest.raises(VerifyError, match="dfg.edge-distance") as ei:
            verify_analyzed(a, lib)
        assert ei.value.findings


# ---------------------------------------------------------------------------
# Schedule mutations
# ---------------------------------------------------------------------------

class TestScheduleMutations:
    def mutated(self, run):
        return copy.deepcopy(run.scheduled)

    def test_zero_ii(self, squash_run):
        run, lib = squash_run
        s = self.mutated(run)
        s.schedule.ii = 0
        findings = reverify_modulo(s.analyzed.dfg, lib, s.schedule,
                                   s.analyzed.edges)
        assert checkers(findings) == {"schedule.ii"}

    def test_missing_placement(self, squash_run):
        run, lib = squash_run
        s = self.mutated(run)
        victim = next(iter(s.schedule.time))
        del s.schedule.time[victim]
        findings = reverify_modulo(s.analyzed.dfg, lib, s.schedule,
                                   s.analyzed.edges)
        assert "schedule.placement" in checkers(findings)
        assert "no start cycle" in findings[0].message

    def test_shifted_slot_breaks_precedence(self, squash_run):
        run, lib = squash_run
        s = self.mutated(run)
        sched = s.schedule
        # pull a dependent op to its producer's issue cycle
        src, dst, _ = next(
            (a, b, d) for a, b, d in s.analyzed.edges
            if d == 0 and lib.delay(a) > 0)
        sched.time[dst.nid] = sched.time[src.nid]
        sched.rt = {}  # the claimed-table compare is not under test here
        findings = reverify_modulo(s.analyzed.dfg, lib, sched,
                                   s.analyzed.edges)
        assert "schedule.precedence" in checkers(findings)
        pre = next(f for f in findings
                   if f.checker == "schedule.precedence")
        assert repr(dst) in pre.where

    def test_oversubscribed_resource_row(self, mem_run):
        run, lib = mem_run
        s = self.mutated(run)
        sched = s.schedule
        mem_nodes = [n for n in s.analyzed.dfg.nodes if n.is_memory]
        cap = lib.resource_slots()["mem"]
        assert len(mem_nodes) > cap
        # cram every memory reference into one modulo row
        for n in mem_nodes:
            sched.time[n.nid] = (
                sched.time[n.nid] - sched.time[n.nid] % sched.ii)
        sched.rt = {}
        findings = reverify_modulo(s.analyzed.dfg, lib, sched,
                                   s.analyzed.edges)
        res = [f for f in findings if f.checker == "schedule.resources"]
        assert res and "mem[row 0]" == res[0].where
        assert f"share {cap} slot(s)" in res[0].message

    def test_claimed_reservation_table_drift(self, squash_run):
        run, lib = squash_run
        s = self.mutated(run)
        sched = s.schedule
        assert sched.rt  # modulo schedules carry their table
        r = next(iter(sched.rt))
        row = next(iter(sched.rt[r]), 0)
        sched.rt[r][row] = sched.rt[r].get(row, 0) + 1
        findings = reverify_modulo(s.analyzed.dfg, lib, sched,
                                   s.analyzed.edges)
        assert checkers(findings) == {"schedule.reservation-table"}
        assert findings[0].where == r

    def test_understated_makespan(self, squash_run):
        run, lib = squash_run
        s = self.mutated(run)
        s.schedule.length = 0
        findings = reverify_modulo(s.analyzed.dfg, lib, s.schedule,
                                   s.analyzed.edges)
        assert checkers(findings) == {"schedule.length"}
        assert "completes at cycle" in findings[0].message

    def test_list_schedule_precedence(self, list_run):
        run, lib = list_run
        s = self.mutated(run)
        e = next(e for e in s.analyzed.dfg.edges
                 if e.dist == 0 and lib.delay(e.src) > 0)
        s.schedule.time[e.dst.nid] = s.schedule.time[e.src.nid]
        findings = reverify_list(s.analyzed.dfg, lib, s.schedule)
        assert "schedule.precedence" in checkers(findings)

    def test_list_schedule_length(self, list_run):
        run, lib = list_run
        s = self.mutated(run)
        s.schedule.length = 0
        findings = reverify_list(s.analyzed.dfg, lib, s.schedule)
        assert checkers(findings) == {"schedule.length"}

    def test_verify_scheduled_raises(self, squash_run):
        run, lib = squash_run
        s = self.mutated(run)
        s.schedule.length = 0
        with pytest.raises(VerifyError, match="schedule.length"):
            verify_scheduled(s, lib)


# ---------------------------------------------------------------------------
# Strict-mode re-derivation mutations
# ---------------------------------------------------------------------------

class TestStrictMutations:
    def test_stale_maxlive_claim(self, vliw_run):
        run, lib = vliw_run
        s = copy.deepcopy(run.scheduled)
        assert s.pressure is not None
        claimed = s.pressure.max_live
        s.pressure = dataclasses.replace(s.pressure, max_live=claimed + 3)
        findings = crosscheck_pressure(
            s.analyzed.dfg, lib, s.schedule, s.pressure,
            s.analyzed.edges)
        assert checkers(findings) == {"pressure.maxlive"}
        assert f"gives {claimed}" in findings[0].message
        with pytest.raises(VerifyError, match="pressure.maxlive"):
            verify_scheduled(s, lib, strict=True)

    def test_honest_maxlive_passes_strict(self, vliw_run):
        run, lib = vliw_run
        verify_scheduled(run.scheduled, lib, strict=True)

    def test_forged_exact_ii_certificate(self, squash_run):
        run, lib = squash_run
        a = run.analyzed
        rec = independent_rec_mii(a.dfg, lib.delay, a.edges)
        res = independent_res_mii(a.dfg, lib)
        assert max(rec, res) > 1  # fig41 carries a real recurrence
        point = copy.deepcopy(run.point)
        point.exact_ii = 1  # "certified optimal" below both bounds
        with pytest.raises(VerifyError, match="report.exact-ii") as ei:
            verify_design_point(point, a, lib)
        assert all(f.checker == "report.exact-ii"
                   for f in ei.value.findings)

    def test_unclaimed_exact_ii_is_ignored(self, squash_run):
        run, lib = squash_run
        point = copy.deepcopy(run.point)
        point.exact_ii = None
        verify_design_point(point, run.analyzed, lib)
