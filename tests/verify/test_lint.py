"""The .lang static linter: every diagnostic fires with a located
position on a crafted bad kernel, and the committed kernels stay clean
(the false-positive guard)."""

import pathlib

from repro.verify import format_lint, lint_file, lint_source

KERNELS = (pathlib.Path(__file__).resolve().parents[2]
           / "src" / "repro" / "lang" / "kernels")
EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def codes(findings):
    return [f.code for f in findings]


def only(findings, code):
    picked = [f for f in findings if f.code == code]
    assert picked, f"expected a {code} finding, got {codes(findings)}"
    return picked[0]


class TestParseErrors:
    def test_syntax_error_becomes_e000(self):
        findings = lint_source("kernel bad {", "bad.lang")
        assert len(findings) == 1
        f = findings[0]
        assert f.code == "E000" and f.severity == "error"
        assert f.line >= 1 and f.col >= 1

    def test_sema_error_becomes_e000(self):
        src = """\
kernel bad {
  i32 i;
  for (i = 0; i < 4; i++) {
    i = nosuchvar;
  }
}
"""
        findings = lint_source(src, "bad.lang")
        assert codes(findings) == ["E000"]
        assert findings[0].line == 4


class TestUnused:
    SRC = """\
kernel unused {
  param i32 scale;
  output i32 out[8];
  i32 dead;
  i32 x;
  i32 i;

  for (i = 0; i < 8; i++) {
    x = i + 1;
    out[i] = x;
  }
}
"""

    def test_w001_unused_param(self):
        f = only(lint_source(self.SRC, "u.lang"), "W001")
        assert "'scale'" in f.message
        assert f.line == 2

    def test_w002_unused_local(self):
        f = only(lint_source(self.SRC, "u.lang"), "W002")
        assert "'dead'" in f.message
        assert f.line == 4


class TestBounds:
    def test_w003_overrunning_subscript(self):
        src = """\
kernel oob {
  i32 src[8] = { 1, 2, 3, 4, 5, 6, 7, 8 };
  output i32 out[8];
  i32 i;

  for (i = 0; i < 8; i++) {
    out[i] = src[i + 4];
  }
}
"""
        f = only(lint_source(src, "oob.lang"), "W003")
        assert "[4..11]" in f.message and "dimension is 8" in f.message
        assert (f.line, f.col) == (7, 18)

    def test_w003_negative_subscript(self):
        src = """\
kernel oob {
  i32 src[8] = { 1, 2, 3, 4, 5, 6, 7, 8 };
  output i32 out[8];
  i32 i;

  for (i = 0; i < 8; i++) {
    out[i] = src[i - 1];
  }
}
"""
        f = only(lint_source(src, "oob.lang"), "W003")
        assert "[-1..6]" in f.message

    def test_in_range_subscripts_are_silent(self):
        src = """\
kernel ok {
  i32 src[16] = {
    1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16
  };
  output i32 out[8];
  i32 a;
  i32 i;
  i32 j;

  for (i = 0; i < 8; i++) {
    a = src[2 * i + 1];
    #pragma kernel
    for (j = 0; j < 4; j++) {
      a = a + j;
    }
    out[i] = a;
  }
}
"""
        assert lint_source(src, "ok.lang") == []


class TestLiterals:
    def test_w004_suffix_overflow(self):
        src = """\
kernel lit {
  output i32 out[4];
  i32 i;

  for (i = 0; i < 4; i++) {
    out[i] = i + 300u8;
  }
}
"""
        f = only(lint_source(src, "lit.lang"), "W004")
        assert "300 overflows u8" in f.message
        assert "wraps to 44" in f.message

    def test_w005_narrowing_assignment(self):
        src = """\
kernel nar {
  output i32 out[4];
  u8 small;
  i32 i;

  for (i = 0; i < 4; i++) {
    small = 999;
    out[i] = small;
  }
}
"""
        f = only(lint_source(src, "nar.lang"), "W005")
        assert "999 does not fit 'small'" in f.message


class TestSquashDiagnosis:
    def test_w009_no_kernel_pragma(self):
        src = """\
kernel nokernel {
  output i32 out[4];
  i32 i;

  for (i = 0; i < 4; i++) {
    out[i] = i;
  }
}
"""
        f = only(lint_source(src, "nk.lang"), "W009")
        assert "#pragma kernel" in f.message

    def test_w010_unsquashable_nest(self):
        # inner trip count depends on the outer IV: squash-illegal
        src = """\
kernel badtrip {
  output i32 out[8];
  i32 x;
  i32 i;
  i32 j;

  x = 0;
  for (i = 0; i < 8; i++) {
    #pragma kernel
    for (j = 0; j < i; j++) {
      x = x + 1;
    }
    out[i] = x;
  }
}
"""
        f = only(lint_source(src, "b.lang"), "W010")
        assert "not squashable" in f.message

    def test_w011_outer_carried_scalar(self):
        # acc accumulates across *outer* iterations: rows not parallel
        src = """\
kernel carried {
  i32 src[16] = {
    1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16
  };
  output i32 out[4];
  i32 acc;
  i32 i;
  i32 j;

  acc = 0;
  for (i = 0; i < 4; i++) {
    #pragma kernel
    for (j = 0; j < 4; j++) {
      acc = acc + src[4 * i + j];
    }
    out[i] = acc;
  }
}
"""
        f = only(lint_source(src, "c.lang"), "W011")
        assert "'acc'" in f.message
        assert "not parallel" in f.message


class TestRendering:
    def test_render_carries_file_line_col(self):
        findings = lint_source("kernel bad {", "x.lang")
        text = format_lint(findings, "x.lang")
        assert text.startswith("x.lang:")
        assert "error[E000]" in text


class TestCommittedKernelsClean:
    def test_every_committed_kernel_lints_clean(self):
        paths = sorted(KERNELS.glob("*.lang")) + sorted(
            EXAMPLES.glob("*.lang"))
        assert paths, "no committed .lang kernels found"
        for path in paths:
            findings = lint_file(path)
            assert findings == [], format_lint(findings, str(path))
