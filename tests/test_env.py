"""Validated environment knobs: clear errors instead of raw tracebacks,
and the worker-count scaling rules."""

import pytest

from repro.env import (
    BATCH_TIMEOUT_ENV, RETRIES_ENV, analysis_cache_mode, batch_timeout,
    env_float, env_int, retries, verify_mode,
)
from repro.errors import ReproError
from repro.explore.engine import (
    _MAX_DEFAULT_JOBS, _MAX_SCALED_JOBS, default_jobs,
)


class TestEnvInt:
    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_KNOB", raising=False)
        assert env_int("REPRO_TEST_KNOB", 7) == 7

    def test_empty_returns_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "  ")
        assert env_int("REPRO_TEST_KNOB", 7) == 7

    def test_valid_value_parses(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "42")
        assert env_int("REPRO_TEST_KNOB", 7) == 42

    def test_non_integer_raises_repro_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "eight")
        with pytest.raises(ReproError, match="REPRO_TEST_KNOB.*integer"):
            env_int("REPRO_TEST_KNOB", 7)

    def test_below_minimum_raises_repro_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "-3")
        with pytest.raises(ReproError, match="minimum is 1"):
            env_int("REPRO_TEST_KNOB", 7, minimum=1)


class TestEnvFloat:
    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_KNOB", raising=False)
        assert env_float("REPRO_TEST_KNOB", 1.5) == 1.5
        assert env_float("REPRO_TEST_KNOB", None) is None

    def test_valid_value_parses(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "2.5")
        assert env_float("REPRO_TEST_KNOB", None) == 2.5

    def test_non_numeric_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "soon")
        with pytest.raises(ReproError, match="REPRO_TEST_KNOB.*number"):
            env_float("REPRO_TEST_KNOB", None)

    def test_exclusive_minimum(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "0")
        with pytest.raises(ReproError, match="> 0"):
            env_float("REPRO_TEST_KNOB", None, minimum=0.0,
                      exclusive=True)


class TestSupervisionKnobs:
    def test_retries_default(self, monkeypatch):
        monkeypatch.delenv(RETRIES_ENV, raising=False)
        assert retries() == 2

    def test_retries_env_and_override(self, monkeypatch):
        monkeypatch.setenv(RETRIES_ENV, "5")
        assert retries() == 5
        assert retries(0) == 0  # explicit override beats the env

    def test_retries_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv(RETRIES_ENV, "-1")
        with pytest.raises(ReproError, match=RETRIES_ENV):
            retries()
        with pytest.raises(ReproError, match="retries"):
            retries(-3)

    def test_batch_timeout_default_off(self, monkeypatch):
        monkeypatch.delenv(BATCH_TIMEOUT_ENV, raising=False)
        assert batch_timeout() is None

    def test_batch_timeout_env_and_override(self, monkeypatch):
        monkeypatch.setenv(BATCH_TIMEOUT_ENV, "1.5")
        assert batch_timeout() == 1.5
        assert batch_timeout(9.0) == 9.0

    def test_batch_timeout_rejects_nonpositive(self, monkeypatch):
        monkeypatch.setenv(BATCH_TIMEOUT_ENV, "0")
        with pytest.raises(ReproError, match=BATCH_TIMEOUT_ENV):
            batch_timeout()
        with pytest.raises(ReproError, match="> 0"):
            batch_timeout(0.0)


class TestKnobValidation:
    def test_repro_jobs_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "fast")
        with pytest.raises(ReproError, match="REPRO_JOBS"):
            default_jobs()

    def test_repro_jobs_rejects_zero(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "0")
        with pytest.raises(ReproError, match="REPRO_JOBS"):
            default_jobs()

    def test_repro_jobs_valid_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_jobs() == 3
        assert default_jobs(n_tasks=100000) == 3  # env beats scaling

    def test_exact_budget_rejects_garbage(self, monkeypatch):
        from repro.hw.exact import _env_int
        monkeypatch.setenv("REPRO_EXACT_BUDGET", "lots")
        with pytest.raises(ReproError, match="REPRO_EXACT_BUDGET"):
            _env_int("REPRO_EXACT_BUDGET", 1)

    def test_exact_node_limit_rejects_negative(self, monkeypatch):
        from repro.hw.exact import _env_int
        monkeypatch.setenv("REPRO_EXACT_NODE_LIMIT", "-1")
        with pytest.raises(ReproError, match="REPRO_EXACT_NODE_LIMIT"):
            _env_int("REPRO_EXACT_NODE_LIMIT", 1)

    def test_exact_scheduler_surfaces_the_error(self, monkeypatch):
        from repro.hw.exact import exact_modulo_schedule
        from repro.hw.ops import ACEV_LIBRARY
        from repro.analysis import find_loop_nests
        from repro.core import analyze_nest
        from tests.conftest import build_fig21
        monkeypatch.setenv("REPRO_EXACT_BUDGET", "many")
        prog = build_fig21()
        nest = find_loop_nests(prog)[0]
        _, _, _, dfg, _, _ = analyze_nest(prog, nest, 1)
        with pytest.raises(ReproError, match="REPRO_EXACT_BUDGET"):
            exact_modulo_schedule(dfg, ACEV_LIBRARY)


class TestJobScaling:
    def test_small_sweeps_keep_the_cap(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        monkeypatch.setattr("os.sched_getaffinity",
                            lambda _: set(range(64)), raising=False)
        assert default_jobs() == _MAX_DEFAULT_JOBS
        assert default_jobs(n_tasks=8) == _MAX_DEFAULT_JOBS

    def test_large_sweeps_scale_past_the_cap(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        monkeypatch.setattr("os.sched_getaffinity",
                            lambda _: set(range(64)), raising=False)
        assert default_jobs(n_tasks=100) == 25
        assert default_jobs(n_tasks=100000) == _MAX_SCALED_JOBS

    def test_never_exceeds_cores(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        monkeypatch.setattr("os.sched_getaffinity",
                            lambda _: {0, 1}, raising=False)
        assert default_jobs(n_tasks=100000) == 2


class TestAnalysisCacheMode:
    @pytest.mark.parametrize("raw,mode", [
        ("0", "off"), ("mem", "mem"), ("1", "disk"), ("", "disk"),
        ("MEM", "mem"), ("yes", "disk"),
    ])
    def test_modes(self, monkeypatch, raw, mode):
        monkeypatch.setenv("REPRO_ANALYSIS_CACHE", raw)
        assert analysis_cache_mode() == mode


class TestVerifyMode:
    @pytest.mark.parametrize("raw,mode", [
        ("0", "off"), ("off", "off"), ("", "off"), ("  ", "off"),
        ("1", "on"), ("on", "on"), ("ON", "on"),
        ("strict", "strict"), ("STRICT", "strict"),
    ])
    def test_modes(self, monkeypatch, raw, mode):
        monkeypatch.setenv("REPRO_VERIFY", raw)
        assert verify_mode() == mode

    def test_unset_defaults_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_VERIFY", raising=False)
        assert verify_mode() == "off"

    @pytest.mark.parametrize("raw", ["2", "yes", "paranoid"])
    def test_garbage_raises_repro_error(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_VERIFY", raw)
        with pytest.raises(ReproError, match="REPRO_VERIFY"):
            verify_mode()
