"""Regenerates Figure 6.4 — operators as percent of total area.

Shape claims: the operator share stays roughly constant across jam
factors (operators and registers scale together) but falls sharply for
squash at higher factors (only registers are added) — the observation
behind the thesis's register-packing argument (§6.3)."""

import pytest

from repro.harness import figure_series, format_figure, run_table_6_3


def test_fig_6_4(once, artifact):
    norm = run_table_6_3()
    text = once(format_figure, "6.4", norm)
    artifact("fig_6_4", text)

    _, labels, series = figure_series("6.4", norm)
    idx = {lab: k for k, lab in enumerate(labels)}
    for kernel, vals in series.items():
        # sharp decline across squash factors
        assert vals[idx["squash(16)"]] < vals[idx["squash(2)"]] * 0.8, kernel
        # roughly flat across jam factors
        assert vals[idx["jam(16)"]] == pytest.approx(
            vals[idx["jam(2)"]], rel=0.25), kernel
        # and squash(16) is register-dominated
        assert vals[idx["squash(16)"]] < 75.0, kernel
