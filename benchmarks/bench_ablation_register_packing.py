"""Ablation — shift-register packing (thesis §4.4/§6.3).

The prototype charges every register a full row ("the presented values
for area are fairly conservative"); the thesis argues squash registers
pack into shift registers "implemented even more efficiently with
minimal interconnect", so "the actual speedup per area ratio will
increase significantly for unroll-and-squash in a final hardware
implementation".  We quantify that: rerun the sweep with registers at
1.0 / 0.5 / 0.25 rows and compare efficiency.  Jam efficiency barely
moves (operator-dominated); squash(16) efficiency rises steeply."""

import pytest

from repro.harness import render_table, run_table_6_2, run_table_6_3

PACKINGS = (1.0, 0.5, 0.25)


def _sweep_eff():
    rows = {}
    for rr in PACKINGS:
        spec = "acev" if rr == 1.0 else f"acev::reg_rows={rr}"
        norm = run_table_6_3(run_table_6_2((2, 4, 8, 16), spec))
        for kernel, pts in norm.items():
            by = {n.point.label: n for n in pts}
            rows.setdefault(kernel, {})[rr] = (
                by["squash(16)"].efficiency, by["jam(16)"].efficiency)
    return rows


def test_register_packing(once, artifact):
    rows = once(_sweep_eff)
    table = []
    for kernel, per in rows.items():
        table.append([kernel]
                     + [round(per[rr][0], 2) for rr in PACKINGS]
                     + [round(per[rr][1], 2) for rr in PACKINGS])
    text = render_table(
        ["kernel", "sq16 eff @1.0", "@0.5", "@0.25",
         "jam16 eff @1.0", "@0.5", "@0.25"],
        table,
        title="Ablation: rows per register (shift-register packing, §4.4).")
    artifact("ablation_register_packing", text)

    for kernel, per in rows.items():
        sq_full, _ = per[1.0]
        sq_packed, _ = per[0.25]
        jam_full = per[1.0][1]
        jam_packed = per[0.25][1]
        # squash efficiency rises significantly with packing...
        assert sq_packed > sq_full * 1.25, kernel
        # ...while jam's is operator-dominated and barely moves
        assert jam_packed < jam_full * 1.25, kernel
