"""Shared fixtures for the benchmark harness.

Every bench regenerates one thesis table/figure: it times the experiment
through pytest-benchmark (single round — these are synthesis sweeps, not
microbenchmarks) and writes the rendered artifact to
``benchmarks/results/<name>.txt`` while echoing it to stdout so the
``bench_output.txt`` transcript contains every reproduced artifact.
"""

from __future__ import annotations

import os
import pathlib
import tempfile

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(autouse=True, scope="session")
def _hermetic_caches():
    """Keep benchmark timings honest across processes.

    The Table 6.2 sweep now lands in the persistent exploration cache;
    without isolation a re-run would time cache hits instead of the
    synthesis sweep.  Point the cache at a throwaway directory and clear
    both layers once per session — within the session the benches still
    share one sweep, exactly as the old in-process memo did.
    """
    from repro.harness import clear_caches
    with tempfile.TemporaryDirectory(prefix="repro_bench_cache") as tmp:
        old = os.environ.get("REPRO_CACHE_DIR")
        os.environ["REPRO_CACHE_DIR"] = tmp
        clear_caches()
        yield
        if old is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = old


@pytest.fixture
def artifact(capsys):
    """Writer fixture: ``artifact("table_6_2", text)``."""
    def write(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text)
        with capsys.disabled():
            print(f"\n{'=' * 72}\n{text}\n[saved to {path}]")
    return write


@pytest.fixture
def once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""
    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)
    return run
