"""Shared fixtures for the benchmark harness.

Every bench regenerates one thesis table/figure: it times the experiment
through pytest-benchmark (single round — these are synthesis sweeps, not
microbenchmarks) and writes the rendered artifact to
``benchmarks/results/<name>.txt`` while echoing it to stdout so the
``bench_output.txt`` transcript contains every reproduced artifact.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def artifact(capsys):
    """Writer fixture: ``artifact("table_6_2", text)``."""
    def write(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text)
        with capsys.disabled():
            print(f"\n{'=' * 72}\n{text}\n[saved to {path}]")
    return write


@pytest.fixture
def once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""
    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)
    return run
