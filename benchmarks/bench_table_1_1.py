"""Regenerates Table 1.1 — program execution time in loops.

Paper row format: benchmark | # loops | # loops >1 % time | total % of
time in those loops.  Expected shape: nearly all execution time is
concentrated in a handful of loops (>= 85 % for every program)."""

from repro.harness import format_table_1_1, run_table_1_1


def test_table_1_1(once, artifact):
    results = once(run_table_1_1)
    text = format_table_1_1(results)
    artifact("table_1_1", text)

    for bm, summary in results:
        # the paper's headline: loops dominate execution time
        assert summary.hot_share >= 0.85, (bm.name, summary.hot_share)
        assert summary.n_hot_loops <= summary.n_loops
    # ADPCM's profile is tiny and fully hot (3 loops in the paper)
    adpcm = next(s for bm, s in results if bm.name == "adpcm")
    assert adpcm.n_loops == 3 and adpcm.n_hot_loops == 3
