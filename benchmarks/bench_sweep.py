"""The standardized sweep benchmark: cold / warm / warm-recompile /
vliw-retarget phases of the full Table 6.2 + 6.3 design space, recorded
to ``BENCH_5.json``.

Wraps :func:`repro.harness.bench.run_sweep_bench` — the same engine
behind ``repro bench`` — so the perf trajectory the CLI, CI bench-smoke
job, and this pytest-benchmark harness report is one number, not three.
The JSON lands at the repository root (``BENCH_5.json``) where every
future PR can diff it, and the rendered summary joins the other
artifacts under ``results/``.  The ``vliw_retarget`` phase times the
same kernels on the ``vliw4`` backend against warm front-end caches —
the marginal cost of a second machine model.
"""

import json
import pathlib

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: PR-3 reference wall-clocks for the identical sweep on the identical
#: container (1 CPU; measured at the start of PR 4, before the two-tier
#: artifact cache, incremental II search, and batched engine landed).
#: PR 3 had no cross-process artifact sharing, so its fresh-process
#: "warm" recompile cost equalled its cold cost.
PR3_BASELINE = {
    "cold_wall_s": 1.976,
    "cold_jobs": 8,
    "cold_jobs1_wall_s": 1.756,
    "warm_result_wall_s": 0.001,
    "note": "measured at PR-4 start, jobs=8 (and jobs=1), 1-CPU container",
}


def test_sweep_bench(once, artifact):
    from repro.harness.bench import format_bench, run_sweep_bench

    # jobs pinned to the baseline's worker count: the acceptance
    # comparison is at equal jobs, not at each side's best setting
    record = once(run_sweep_bench, factors=(2, 4, 8, 16),
                  jobs=PR3_BASELINE["cold_jobs"], baseline=PR3_BASELINE)
    assert record["phases"]["warm_result"]["result_cache"]["hit_rate"] == 1.0
    assert record["queries"] == 50
    assert "vliw_retarget" in record["phases"]

    (REPO_ROOT / "BENCH_5.json").write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n")
    artifact("sweep_bench", format_bench(record))
