"""Regenerates the Chapter 2 motivating comparison (Figs. 2.1-2.3).

The f/g nest: original II=2 and total 2*M*N cycles; unroll-and-jam by 2
halves total time but doubles the operators; unroll-and-squash by 2
reaches the same M*N total with the *original* operator count plus two
pipeline registers — and the emitted software matches Fig. 2.3's
prolog / (2N-1)-trip steady loop / epilog structure."""

import pytest

from repro.analysis import find_kernel_nests, find_loop_nests, trip_count
from repro.core import unroll_and_squash
from repro.harness import render_table
from repro.hw import normalize
from repro.ir import For, program_to_str, run_program, walk_stmts
from repro.nimble import compile_jam, compile_original, compile_squash
from repro.workloads.simple import build_fg_nest, fg_reference


def _motivation():
    m, n = 16, 8
    prog = build_fg_nest(m=m, n=n)
    nest = find_kernel_nests(prog)[0]
    original = compile_original(prog, nest)
    jam2 = compile_jam(prog, nest, 2, base_ii=original.ii)
    squash2 = compile_squash(prog, nest, 2, base_ii=original.ii)
    return prog, nest, original, jam2, squash2


def test_fig_2_1_2_3(once, artifact):
    prog, nest, original, jam2, squash2 = once(_motivation)

    rows = []
    for p in (original, jam2, squash2):
        nrm = normalize(original, p)
        rows.append([p.label, p.ii, p.op_rows, p.registers,
                     int(p.total_cycles), round(nrm.speedup, 2)])
    text = render_table(
        ["variant", "II", "op rows", "registers", "total cycles", "speedup"],
        rows, title="Figures 2.1-2.3: the motivating f/g example (M=16, N=8).")

    # Fig 2.3's software shape: prolog + steady loop of 2N-1 ticks + epilog
    res = unroll_and_squash(prog, nest, 2)
    steady = [s for s in walk_stmts(res.program.body)
              if isinstance(s, For) and s.annotations.get("squash_ds")]
    text += (f"\nsquash(2) emitted steady-state ticks: "
             f"{res.emission.steady_ticks} (= 2N-1 = {2 * 8 - 1})\n")
    artifact("fig_2_1_2_3", text)

    # Chapter 2's arithmetic, in order:
    assert original.ii == 2                       # min II of the f->g cycle
    assert jam2.ii == 2                           # jam leaves the cycle alone
    assert squash2.ii == 1                        # squash splits it
    assert jam2.op_rows == 2 * original.op_rows   # doubled operators
    assert squash2.op_rows == original.op_rows    # same operators
    assert squash2.registers - original.registers == 1 or \
        squash2.registers >= original.registers   # + pipeline registers only
    assert normalize(original, jam2).speedup == pytest.approx(2.0, rel=0.01)
    assert normalize(original, squash2).speedup == pytest.approx(2.0, rel=0.1)
    assert res.emission.steady_ticks == 2 * 8 - 1

    # and the transformed code still encrypts, err, transforms correctly
    out = run_program(res.program).arrays["data_out"]
    exp = fg_reference(prog.arrays["data_in"].init, 8)
    assert list(out) == list(exp)
