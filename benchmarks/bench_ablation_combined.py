"""Ablation — combining unroll-and-jam with unroll-and-squash (Ch. 2).

"Unroll-and-jam can be applied with an unroll factor that matches the
desired or available amount of operators, and then unroll-and-squash can
be used to further improve the performance": on the f/g example,
jam(2)+squash(2) quadruples throughput for ~2x the operators, beating
both jam(4) (4x operators) and squash(4) alone (slower: II floor)."""

import pytest

from repro.analysis import find_kernel_nests
from repro.harness import render_table
from repro.hw import normalize
from repro.nimble import (
    compile_jam, compile_jam_squash, compile_original, compile_squash,
)
from repro.workloads.simple import build_fg_nest
from repro.workloads.skipjack import build_program as build_skipjack


def _grid():
    prog = build_fg_nest(m=32, n=8)
    nest = find_kernel_nests(prog)[0]
    base = compile_original(prog, nest)
    points = {"original": base}
    for j, s in ((1, 2), (1, 4), (2, 1), (4, 1), (2, 2), (2, 4), (4, 4)):
        if j == 1:
            points[f"squash({s})"] = compile_squash(prog, nest, s,
                                                    base_ii=base.ii)
        elif s == 1:
            points[f"jam({j})"] = compile_jam(prog, nest, j, base_ii=base.ii)
        else:
            points[f"jam({j})+squash({s})"] = compile_jam_squash(
                prog, nest, j, s, base_ii=base.ii)
    return points


def test_combined_jam_squash(once, artifact):
    points = once(_grid)
    base = points["original"]
    rows = []
    for label, p in points.items():
        n = normalize(base, p)
        rows.append([label, p.ii, p.op_rows, p.registers,
                     round(n.speedup, 2), round(n.efficiency, 2)])
    text = render_table(
        ["variant", "II", "op rows", "regs", "speedup", "efficiency"],
        rows, title="Ablation: combined jam+squash on the f/g nest "
                    "(Ch. 2 arithmetic).")
    artifact("ablation_combined", text)

    combo = points["jam(2)+squash(2)"]
    n_combo = normalize(base, combo)
    # Ch. 2: "quadruples the performance but only doubles the area"
    assert n_combo.speedup == pytest.approx(4.0, rel=0.1)
    assert combo.op_rows == 2 * base.op_rows
    # the combination beats squash(4) alone (II floor of 1 was already hit
    # by squash(2); more stages cannot help, more operators can)
    assert n_combo.speedup > normalize(base, points["squash(4)"]).speedup
    # and matches jam(4)'s speedup at half the operator area
    n_jam4 = normalize(base, points["jam(4)"])
    assert n_combo.speedup == pytest.approx(n_jam4.speedup, rel=0.1)
    assert combo.op_rows == points["jam(4)"].op_rows // 2
    assert n_combo.efficiency > n_jam4.efficiency
