"""Regenerates Figure 6.1 — speedup factor per kernel and variant.

Shape claims: squash speedup grows with DS everywhere; jam wins at large
factors on port-free kernels but loses its proportionality on the
memory-bound ones (thesis: "unroll-and-jam fails to obtain a speedup
proportional to the unroll factor for larger factors")."""

import pytest

from repro.harness import figure_series, format_figure, run_table_6_3


def test_fig_6_1(once, artifact):
    norm = run_table_6_3()
    text = once(format_figure, "6.1", norm)
    artifact("fig_6_1", text)

    _, labels, series = figure_series("6.1", norm)
    idx = {lab: k for k, lab in enumerate(labels)}
    for kernel, vals in series.items():
        assert vals[idx["original"]] == pytest.approx(1.0)
        # squash speedup is monotone in DS
        sq = [vals[idx[f"squash({k})"]] for k in (2, 4, 8, 16)]
        assert all(a <= b + 1e-9 for a, b in zip(sq, sq[1:])), kernel
    # jam proportionality holds for -hw, fails for -mem
    hw = series["des-hw"]
    assert hw[idx["jam(16)"]] / hw[idx["jam(2)"]] == pytest.approx(8, rel=0.1)
    mem = series["des-mem"]
    assert mem[idx["jam(16)"]] / mem[idx["jam(2)"]] < 4
