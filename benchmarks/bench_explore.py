"""Benchmarks the exploration engine itself: cold parallel sweep vs a
fully-cached warm re-run over the Table 6.2 design space, plus the
shared-analysis ablation.

The cold pass fans the full (kernel x variant x factor) space over the
process pool; the warm pass replays it from the persistent result cache
and must be hits-only — the incrementality every repeated sweep, bench,
and CLI invocation now relies on.  The ablation times the same sweep
with the per-kernel base-analysis cache disabled (the pre-pipeline
behaviour: every variant re-ran clone/3AC/SSA/DFG) vs enabled, and
records both wall times in ``results/explore_analysis_cache.json``.
"""

import json
import os
import pathlib
import time

import pytest

import repro
from repro.explore import (
    NullCache, ResultCache, default_jobs, evaluate, format_pareto,
    format_summary, table_sweep_space,
)
from repro.workloads import table_6_1_benchmarks

FACTORS = (2, 4, 8, 16)
RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="module")
def space():
    kernels = [bm.name for bm in table_6_1_benchmarks()]
    return table_sweep_space(kernels, FACTORS)


def test_explore_cold_parallel(once, artifact, tmp_path, space):
    cache = ResultCache(tmp_path / "cache")
    result = once(evaluate, space.enumerate(), jobs=default_jobs(),
                  cache=cache)
    assert result.cache_stats.misses == space.size
    assert not result.skips()
    artifact("explore_pareto",
             format_summary(result) + "\n" + format_pareto(result))


def test_explore_warm_cache(once, artifact, tmp_path, space):
    queries = space.enumerate()
    cold = ResultCache(tmp_path / "cache")
    evaluate(queries, cache=cold)

    warm = once(evaluate, queries, jobs=1,
                cache=ResultCache(tmp_path / "cache"))
    assert warm.cache_stats.hits == len(queries)
    assert warm.cache_stats.hit_rate == 1.0
    artifact("explore_cache", format_summary(warm))


def _timed_sweep(queries, share_analysis: bool) -> float:
    """One in-process sweep (jobs=1, no result cache), timed.

    ``share_analysis=False`` reproduces the pre-pipeline compiler: the
    base analysis of each kernel nest (and every jam transform) is
    rebuilt for every variant.  The shared rounds pin the cache to its
    in-process tier (``mem``): this ablation isolates analysis
    *sharing*, and every round clears all caches, so letting it also
    write the persistent artifact store would bill cross-process
    durability (measured separately by ``benchmarks/bench_sweep.py``)
    to the sharing side.
    """
    repro.clear_caches()
    old = os.environ.get("REPRO_ANALYSIS_CACHE")
    os.environ["REPRO_ANALYSIS_CACHE"] = "mem" if share_analysis else "0"
    try:
        t0 = time.perf_counter()
        result = evaluate(queries, jobs=1, cache=NullCache())
        elapsed = time.perf_counter() - t0
    finally:
        if old is None:
            os.environ.pop("REPRO_ANALYSIS_CACHE", None)
        else:
            os.environ["REPRO_ANALYSIS_CACHE"] = old
    assert not result.skips()
    return elapsed


def test_shared_analysis_cache_speedup(once, artifact):
    """The pipeline's shared analysis must beat per-variant re-analysis
    on a Table 6.2 x memory-ports ablation sweep (bench JSON artifact).

    The sweep crosses the full variant space with two targets (the §6
    board and its one-port ablation).  Base analysis and jam transforms
    are target-independent, so the shared caches compute each once;
    the unshared path — the pre-pipeline compiler's behaviour — redoes
    them for every (variant, target) pair.
    """
    kernels = [bm.name for bm in table_6_1_benchmarks()]
    space = table_sweep_space(kernels, FACTORS, "acev") \
        | table_sweep_space(kernels, FACTORS, "acev::ports=1")
    queries = space.enumerate()
    _timed_sweep(queries, True)   # warm-up round, discarded
    unshared_times: list[float] = []
    shared_times: list[float] = []

    def rounds():
        # alternate the paths so neither absorbs all machine warm-up
        for _ in range(2):
            unshared_times.append(_timed_sweep(queries, False))
            shared_times.append(_timed_sweep(queries, True))

    once(rounds)
    unshared, shared = min(unshared_times), min(shared_times)

    # deterministic check that work was actually skipped (wall-clock can
    # jitter on loaded machines): the final shared round's caches must
    # have served most analyses from memory
    from repro.pipeline import analysis_cache
    cache = analysis_cache()
    assert cache.hits > cache.misses > 0, (cache.hits, cache.misses)

    record = {
        "design_points": len(queries),
        "unshared_analysis_s": round(unshared, 4),
        "shared_analysis_s": round(shared, 4),
        "speedup": round(unshared / shared, 3) if shared else None,
        "analysis_cache_hits": cache.hits,
        "analysis_cache_misses": cache.misses,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "explore_analysis_cache.json"
    path.write_text(json.dumps(record, indent=2) + "\n")
    artifact("explore_analysis_cache",
             json.dumps(record, indent=2))
    # loose wall-clock guard against gross regressions only; the honest
    # comparison is the recorded JSON
    assert shared <= unshared * 1.25, record
