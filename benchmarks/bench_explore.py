"""Benchmarks the exploration engine itself: cold parallel sweep vs a
fully-cached warm re-run over the Table 6.2 design space.

The cold pass fans the full (kernel x variant x factor) space over the
process pool; the warm pass replays it from the persistent result cache
and must be hits-only — the incrementality every repeated sweep, bench,
and CLI invocation now relies on.
"""

import pytest

from repro.explore import (
    ResultCache, default_jobs, evaluate, format_pareto, format_summary,
    table_sweep_space,
)
from repro.workloads import table_6_1_benchmarks

FACTORS = (2, 4, 8, 16)


@pytest.fixture(scope="module")
def space():
    kernels = [bm.name for bm in table_6_1_benchmarks()]
    return table_sweep_space(kernels, FACTORS)


def test_explore_cold_parallel(once, artifact, tmp_path, space):
    cache = ResultCache(tmp_path / "cache")
    result = once(evaluate, space.enumerate(), jobs=default_jobs(),
                  cache=cache)
    assert result.cache_stats.misses == space.size
    assert not result.skips()
    artifact("explore_pareto",
             format_summary(result) + "\n" + format_pareto(result))


def test_explore_warm_cache(once, artifact, tmp_path, space):
    queries = space.enumerate()
    cold = ResultCache(tmp_path / "cache")
    evaluate(queries, cache=cold)

    warm = once(evaluate, queries, jobs=1,
                cache=ResultCache(tmp_path / "cache"))
    assert warm.cache_stats.hits == len(queries)
    assert warm.cache_stats.hit_rate == 1.0
    artifact("explore_cache", format_summary(warm))
