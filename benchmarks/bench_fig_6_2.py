"""Regenerates Figure 6.2 — area increase factor.

Shape claims: jam area scales roughly linearly with the unroll factor
(operator duplication); squash area grows far slower (registers only).
The float benchmark (IIR) shows the starkest contrast, as in the paper.
"""

import pytest

from repro.harness import figure_series, format_figure, run_table_6_3


def test_fig_6_2(once, artifact):
    norm = run_table_6_3()
    text = once(format_figure, "6.2", norm)
    artifact("fig_6_2", text)

    _, labels, series = figure_series("6.2", norm)
    idx = {lab: k for k, lab in enumerate(labels)}
    for kernel, vals in series.items():
        for k in (2, 4, 8, 16):
            assert vals[idx[f"squash({k})"]] < vals[idx[f"jam({k})"]], \
                (kernel, k)
        # jam is roughly linear in the factor
        assert vals[idx["jam(16)"]] == pytest.approx(
            8 * vals[idx["jam(2)"]], rel=0.35), kernel
    # IIR: squash(16) stays under ~2x while jam(16) explodes (paper: 2.4 vs 18.5)
    iir = series["iir"]
    assert iir[idx["squash(16)"]] < 2.5
    assert iir[idx["jam(16)"]] > 10
