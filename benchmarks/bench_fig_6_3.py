"""Regenerates Figure 6.3 — efficiency (speedup/area), higher is better.

Shape claims (thesis §6.3): squash wins over jam in most cases; jam
efficiency decreases with factor on memory-bound kernels but stays about
constant on port-free ones; IIR's squash efficiency *grows* with the
factor (large original II, small reachable II)."""

import pytest

from repro.harness import figure_series, format_figure, run_table_6_3


def test_fig_6_3(once, artifact):
    norm = run_table_6_3()
    text = once(format_figure, "6.3", norm)
    artifact("fig_6_3", text)

    _, labels, series = figure_series("6.3", norm)
    idx = {lab: k for k, lab in enumerate(labels)}
    # squash(4) beats jam(4) everywhere
    for kernel, vals in series.items():
        assert vals[idx["squash(4)"]] > vals[idx["jam(4)"]], kernel
    # jam efficiency declines with factor on -mem kernels...
    for kernel in ("skipjack-mem", "des-mem"):
        vals = series[kernel]
        assert vals[idx["jam(16)"]] < vals[idx["jam(2)"]], kernel
    # ...but stays about constant on -hw kernels
    for kernel in ("skipjack-hw", "des-hw"):
        vals = series[kernel]
        assert vals[idx["jam(16)"]] == pytest.approx(
            vals[idx["jam(2)"]], rel=0.15), kernel
    # IIR squash efficiency grows with the factor
    iir = series["iir"]
    sq = [iir[idx[f"squash({k})"]] for k in (2, 4, 8, 16)]
    assert sq == sorted(sq)
