"""Ablation — memory-bus width (thesis §6.1's "two memory references per
clock cycle were allowed").

The jam saturation point and the squash II floor are both set by the
port count.  Sweep 1/2/4 ports on the memory-bound kernels: jam(8) II
shrinks as ports double; squash II floor follows ceil(mem/ports); the
port-free `-hw` kernels are insensitive."""

import pytest

from repro.harness import render_table, run_table_6_2

PORTS = (1, 2, 4)


def _sweep_ports():
    out = {}
    for ports in PORTS:
        spec = "acev" if ports == 2 else f"acev::ports={ports}"
        out[ports] = run_table_6_2((2, 4, 8, 16), spec)
    return out


def test_mem_ports(once, artifact):
    sweeps = once(_sweep_ports)
    rows = []
    for kernel in ("skipjack-mem", "des-mem", "iir", "skipjack-hw"):
        rows.append(
            [kernel]
            + [sweeps[p][kernel].jam[8].ii for p in PORTS]
            + [sweeps[p][kernel].squash[16].ii for p in PORTS])
    text = render_table(
        ["kernel", "jam8 II @1p", "@2p", "@4p",
         "sq16 II @1p", "@2p", "@4p"],
        rows, title="Ablation: memory ports per cycle (target §6.1).")
    artifact("ablation_mem_ports", text)

    for kernel in ("skipjack-mem", "des-mem"):
        jam_ii = [sweeps[p][kernel].jam[8].ii for p in PORTS]
        assert jam_ii[0] > jam_ii[1] >= jam_ii[2], kernel   # more ports help
        sq_ii = [sweeps[p][kernel].squash[16].ii for p in PORTS]
        assert sq_ii[0] >= sq_ii[1] >= sq_ii[2], kernel
    # port-free kernel: insensitive to the bus entirely
    hw_ii = [sweeps[p]["skipjack-hw"].jam[8].ii for p in PORTS]
    assert hw_ii[0] == hw_ii[1] == hw_ii[2]
