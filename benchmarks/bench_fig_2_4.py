"""Regenerates Figure 2.4 — operator usage over time, jam vs squash.

On the f/g example with factor 2: unroll-and-jam runs 4 operators at 50%
occupancy (every other cycle idle, II=2), unroll-and-squash runs the
original 2 operators at 100% (II=1) — "it may be possible to combine
both techniques" is exercised by bench_ablation_combined."""

from repro.harness import format_fig_2_4, run_fig_2_4


def test_fig_2_4(once, artifact):
    data = once(run_fig_2_4, 2)
    artifact("fig_2_4", format_fig_2_4(data))

    jam_sched, jam_tl = data["jam"]
    sq_sched, sq_tl = data["squash"]
    # the figure's claim in numbers:
    assert sq_sched.ii == 1 and jam_sched.ii == 2
    assert len(jam_tl) == 2 * len(sq_tl)   # jam duplicated the operators

    def occupancy(tl):
        cells = [c for row in tl.values() for c in row[4:20]]  # steady state
        return sum(1 for c in cells if c >= 0) / len(cells)

    assert occupancy(sq_tl) == 1.0          # squash fills every idle slot
    assert occupancy(jam_tl) <= 0.55        # jam idles half the time
