"""Regenerates Tables 6.1 + 6.2 — the raw synthesis sweep.

Ten variants per kernel (original, pipelined, squash 2/4/8/16,
jam 2/4/8/16) with II, area (rows), and register count.  Absolute values
are our cost model's; the asserted *shape* claims come from the thesis:

* squash II is non-increasing in DS; jam II is non-decreasing;
* squash never increases the operator row count; jam scales it ~DS x;
* on the `-mem` kernels jam's II eventually exceeds pipelined II
  (memory-bus congestion), while the `-hw` kernels keep jam II flat;
* squash register counts grow roughly linearly in DS.
"""

import pytest

from repro.harness import (
    format_table_6_1, format_table_6_2, run_table_6_1, run_table_6_2,
)

FACTORS = (2, 4, 8, 16)


def test_table_6_2(once, artifact):
    sweep = once(run_table_6_2, FACTORS)
    text = format_table_6_1(run_table_6_1()) + "\n" + format_table_6_2(sweep)
    artifact("table_6_2", text)

    for kernel, vs in sweep.items():
        sq = [vs.squash[k] for k in FACTORS]
        jm = [vs.jam[k] for k in FACTORS]
        # II monotonicity
        assert all(a.ii >= b.ii for a, b in zip(sq, sq[1:])), kernel
        assert all(a.ii <= b.ii for a, b in zip(jm, jm[1:])), kernel
        assert vs.pipelined.ii <= vs.original.ii, kernel
        # operator area: squash constant, jam scales
        assert all(p.op_rows == vs.original.op_rows for p in sq), kernel
        assert jm[-1].op_rows > 8 * vs.original.op_rows, kernel
        # registers grow with DS for squash
        assert all(a.registers < b.registers for a, b in zip(sq, sq[1:])), \
            kernel

    # memory congestion: -mem kernels see jam II blow past pipelined II
    for kernel in ("skipjack-mem", "des-mem"):
        vs = sweep[kernel]
        assert vs.jam[16].ii > vs.pipelined.ii, kernel
    # port-free kernels keep jam II flat at the recurrence bound
    for kernel in ("skipjack-hw", "des-hw"):
        vs = sweep[kernel]
        assert vs.jam[16].ii == vs.jam[2].ii == vs.pipelined.ii, kernel
