"""Regenerates Table 6.3 — normalized speedup / area / registers /
efficiency (base = the original non-pipelined design).

Shape claims asserted (thesis §6.3):

* squash achieves better speedup than plain pipelining on every kernel;
* jam speedup is ~linear in DS on port-free kernels but saturates on the
  memory-bound ones;
* squash reaches speedups comparable to jam "with 2 to 10 times less
  area" (we assert >= 2x at matched factors).
"""

import pytest

from repro.harness import format_table_6_3, run_table_6_2, run_table_6_3

FACTORS = (2, 4, 8, 16)


def test_table_6_3(once, artifact):
    sweep = run_table_6_2(FACTORS)
    norm = once(run_table_6_3, sweep)
    artifact("table_6_3", format_table_6_3(norm))

    by_label = {
        kernel: {n.point.label: n for n in pts}
        for kernel, pts in norm.items()
    }
    for kernel, pts in by_label.items():
        # squash beats plain pipelining
        assert pts["squash(4)"].speedup > pts["pipelined"].speedup, kernel
        # area discipline: squash(16) uses 2-10x less area than jam(16)
        ratio = (pts["jam(16)"].point.area_rows
                 / pts["squash(16)"].point.area_rows)
        assert ratio >= 2.0, (kernel, ratio)

    # jam ~linear on port-free kernels
    hw = by_label["skipjack-hw"]
    assert hw["jam(16)"].speedup == pytest.approx(16.0, rel=0.15)
    # jam saturates under memory congestion
    mem = by_label["skipjack-mem"]
    assert mem["jam(16)"].speedup < 10.0
    # squash does not add memory traffic: its speedup keeps improving
    assert mem["squash(16)"].speedup >= mem["squash(4)"].speedup
