#!/usr/bin/env python3
"""Source-language quickstart: from a ``.lang`` file to a priced design.

Compiles ``examples/dotprod.lang`` through the front end
(lexer → parser → sema → lowering), prints the reconstructed source from
the IR printer (the two are round-trippable), squashes the kernel nest
with functional verification, and prices the design on the ACEV model —
the same flow ``python -m repro compile examples/dotprod.lang`` drives.

Run:  python examples/lang_quickstart.py [DS]
"""

import pathlib
import sys

import numpy as np

from repro.analysis import find_kernel_nests
from repro.core import unroll_and_squash
from repro.ir import program_to_str, run_program
from repro.lang import compile_file
from repro.nimble import compile_original, compile_squash
from repro.workloads import benchmark_by_name

HERE = pathlib.Path(__file__).resolve().parent


def main(ds: int = 4) -> None:
    path = HERE / "dotprod.lang"

    # 1. compile source -> validated IR
    prog, source = compile_file(path)
    print(f"=== {path.name}: kernel {prog.name!r} ===")

    # 2. the IR printer emits the same language back
    print(program_to_str(prog))
    assert "kernel dotprod {" in program_to_str(prog)

    # 3. squash the #pragma kernel nest, verify bit-for-bit
    nest = find_kernel_nests(prog)[0]
    res = unroll_and_squash(prog, nest, ds)
    ref = run_program(prog)
    got = run_program(res.program)
    assert np.array_equal(ref.arrays["out"], got.arrays["out"])
    print(f"squash({ds}) verified: outputs bit-identical")

    # 4. price original vs squash on the ACEV hardware model
    base = compile_original(prog, nest)
    point = compile_squash(prog, nest, ds, base_ii=base.ii)
    print(f"original  : II={base.ii:2d}  area={base.area_rows:5.0f} rows  "
          f"registers={base.registers}")
    print(f"squash({ds}) : II={point.ii:2d}  area={point.area_rows:5.0f} rows  "
          f"registers={point.registers}")

    # 5. .lang files are first-class benchmarks for the explorer: the
    #    lang:<path>#<digest> spec keys the persistent result cache by
    #    source *content*
    bm = benchmark_by_name(str(path))
    print(f"benchmark spec: {bm.name}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4)
