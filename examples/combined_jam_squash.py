#!/usr/bin/env python3
"""Combining the two transformations (Chapter 2's closing argument).

"Unroll-and-jam can be applied with an unroll factor that matches the
desired or available amount of operators, and then unroll-and-squash can
be used to further improve the performance and achieve better operator
utilization."

On the f/g nest: jam(2)+squash(2) quadruples throughput for 2x the
operators — better than jam(4) (same speedup, 4x operators) and better
than squash(4) alone (the II floor of 1 cycle was already reached at
DS=2, so extra stages no longer help; extra operators do).

Run:  python examples/combined_jam_squash.py
"""

import numpy as np

from repro.analysis import find_kernel_nests
from repro.core import jam_then_squash
from repro.hw import normalize
from repro.ir import run_program
from repro.nimble import (
    compile_jam, compile_jam_squash, compile_original, compile_squash,
)
from repro.workloads.simple import build_fg_nest, fg_reference


def main() -> None:
    m, n = 32, 8
    prog = build_fg_nest(m=m, n=n)
    nest = find_kernel_nests(prog)[0]
    exp = fg_reference(prog.arrays["data_in"].init, n)

    # functional check of the composed transformation
    res = jam_then_squash(prog, nest, jam=2, ds=2)
    got = run_program(res.program).arrays["data_out"]
    assert list(got) == list(exp)
    print("jam(2) ∘ squash(2): output identical to the original  OK\n")

    base = compile_original(prog, nest)
    candidates = {
        "squash(2)": compile_squash(prog, nest, 2, base_ii=base.ii),
        "squash(4)": compile_squash(prog, nest, 4, base_ii=base.ii),
        "jam(4)": compile_jam(prog, nest, 4, base_ii=base.ii),
        "jam(2)+squash(2)": compile_jam_squash(prog, nest, 2, 2,
                                               base_ii=base.ii),
    }
    print("variant            II  op-rows  regs  speedup  efficiency")
    print(f"{'original':<17} {base.ii:>3}  {base.op_rows:>7}  "
          f"{base.registers:>4}  {1.0:>7.2f}  {1.0:>9.2f}")
    for label, p in candidates.items():
        nm = normalize(base, p)
        print(f"{label:<17} {p.ii:>3}  {p.op_rows:>7}  {p.registers:>4}  "
              f"{nm.speedup:>7.2f}  {nm.efficiency:>9.2f}")

    combo = normalize(base, candidates["jam(2)+squash(2)"])
    jam4 = normalize(base, candidates["jam(4)"])
    print(f"\n=> the combination reaches jam(4)'s speedup "
          f"({combo.speedup:.1f}x vs {jam4.speedup:.1f}x) at half the "
          f"operators — 'quadruples the performance but only doubles the "
          f"area'.")


if __name__ == "__main__":
    main()
