#!/usr/bin/env python3
"""Floating-point IIR filter bank (Table 6.2's IIR row).

Filters 16 independent channels through 4 cascaded biquads (64 points
each), verifies the squashed kernel bit-for-bit, and shows the thesis's
floating-point result: squash efficiency *grows* with the unroll factor
because the deep FP recurrence (large original II) leaves a long way to
the memory floor.

Run:  python examples/iir_filter.py
"""

import numpy as np

from repro.analysis import find_kernel_nests
from repro.core import unroll_and_squash
from repro.hw import normalize
from repro.ir import run_program
from repro.nimble import compile_variants
from repro.workloads import iir


def main() -> None:
    params = iir.default_params()

    prog = iir.build_program(m_channels=8, n_points=32)
    exp = iir.reference_output(prog.arrays["x_in"].init, 8, 32)
    got = run_program(prog, params=params).arrays["y_out"]
    assert np.array_equal(got, exp)
    print("IR kernel matches the reference filter bit-for-bit  OK")

    nest = find_kernel_nests(prog)[0]
    for ds in (2, 4, 8):
        res = unroll_and_squash(prog, nest, ds)
        got = run_program(res.program, params=params).arrays["y_out"]
        assert np.array_equal(got, exp), ds
        print(f"squash({ds}): filter output unchanged  OK  "
              f"(registers: {res.pipeline_registers})")

    prog = iir.build_program(m_channels=16, n_points=64)
    nest = find_kernel_nests(prog)[0]
    vs = compile_variants(prog, nest, factors=(2, 4, 8, 16))
    base = vs.original
    print(f"\nIIR on ACEV: original II={base.ii} (deep FP critical path), "
          f"pipelined II={vs.pipelined.ii} (recurrence-bound)")
    print("variant      II  area(rows)  speedup  efficiency")
    effs = []
    for p in vs.all_points():
        nm = normalize(base, p)
        print(f"{p.label:<12} {p.ii:>2}  {p.area_rows:>9.0f}  "
              f"{nm.speedup:>7.2f}  {nm.efficiency:>9.2f}")
        if p.variant == "squash":
            effs.append(nm.efficiency)
    assert effs == sorted(effs)
    print("\nsquash efficiency grows with DS on the FP kernel "
          "(thesis Fig. 6.3's 'obvious exception').")


if __name__ == "__main__":
    main()
