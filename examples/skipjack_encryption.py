#!/usr/bin/env python3
"""Skipjack through the full pipeline (thesis Fig. 2.5 / Table 6.2 rows).

* validates the reference cipher against the NIST known-answer vector;
* runs the IR kernel and checks it against byte-level ECB encryption;
* squashes the 32-round loop by 2/4/8 and re-verifies the ciphertext;
* prices both the -mem and -hw variants on the ACEV model.

Run:  python examples/skipjack_encryption.py
"""

import numpy as np

from repro.analysis import find_kernel_nests
from repro.core import unroll_and_squash
from repro.hw import normalize
from repro.ir import run_program
from repro.nimble import compile_variants
from repro.workloads import skipjack


def main() -> None:
    # 1. known-answer test
    tv = skipjack.TEST_VECTOR
    ct = skipjack.encrypt_block(tv["key"], tv["plaintext"])
    print(f"NIST KAT: {ct.hex()}  "
          f"({'OK' if ct == tv['ciphertext'] else 'FAIL'})")

    # 2. IR kernel == byte-level ECB
    prog = skipjack.build_program(m_blocks=8, variant="hw")
    words = prog.arrays["data_in"].init
    stream = b"".join(int(w).to_bytes(2, "big") for w in words)
    expected = skipjack.encrypt_ecb(tv["key"], stream)
    out = run_program(prog).arrays["data_out"]
    got = b"".join(int(w).to_bytes(2, "big") for w in out)
    print(f"IR kernel encrypts 8 blocks: "
          f"{'OK' if got == expected else 'FAIL'}")

    # 3. squash and re-verify the ciphertext
    nest = find_kernel_nests(prog)[0]
    for ds in (2, 4, 8):
        res = unroll_and_squash(prog, nest, ds)
        out = run_program(res.program).arrays["data_out"]
        sq = b"".join(int(w).to_bytes(2, "big") for w in out)
        status = "OK" if sq == expected else "FAIL"
        print(f"squash({ds}): ciphertext unchanged  {status}  "
              f"(steady ticks/block group: {res.emission.steady_ticks}, "
              f"pipeline registers: {res.pipeline_registers})")

    # 4. hardware evaluation, both table variants
    for variant in ("mem", "hw"):
        prog = skipjack.build_program(m_blocks=32, variant=variant)
        nest = find_kernel_nests(prog)[0]
        vs = compile_variants(prog, nest, factors=(2, 4, 8, 16))
        base = vs.original
        print(f"\nskipjack-{variant} on ACEV (2 mem ports):")
        print("  variant      II  area(rows)  regs  speedup  eff")
        for p in vs.all_points():
            nm = normalize(base, p)
            print(f"  {p.label:<12} {p.ii:>2}  {p.area_rows:>9.0f}  "
                  f"{p.registers:>4}  {nm.speedup:>7.2f}  {nm.efficiency:.2f}")


if __name__ == "__main__":
    main()
