#!/usr/bin/env python3
"""Chapter 3 gallery: the classical transforms squash builds on.

Shows tiling (Fig. 3.2), unroll-and-jam as unroll+fuse (Fig. 3.3), and
software pipelining (Fig. 3.4, as a modulo schedule), each verified to
preserve semantics.

Run:  python examples/transform_gallery.py
"""

import numpy as np

from repro.analysis import find_loop_nests
from repro.core import analyze_nest
from repro.hw import modulo_schedule
from repro.ir import I32, ProgramBuilder, program_to_str, run_program
from repro.nimble import ACEV
from repro.transforms import tile_loop, unroll_and_jam, unroll_loop


def _simple_2d(m=8, n=4):
    b = ProgramBuilder("fig31")
    a = b.array("a", (m, n), I32, output=True)
    with b.loop("i", 0, m) as i:
        with b.loop("j", 0, n) as j:
            a[i, j] = i + j
    return b.build()


def main() -> None:
    prog = _simple_2d()
    outer = prog.body.stmts[0]

    print("=== Fig 3.1: the iteration space source ===")
    print(program_to_str(prog))

    print("=== Fig 3.2: tiling the outer loop (size 4) ===")
    tiled = tile_loop(prog, outer, 4)
    print(program_to_str(tiled))
    assert np.array_equal(run_program(prog).arrays["a"],
                          run_program(tiled).arrays["a"])

    print("=== Fig 3.3: unroll-and-jam by 4 ===")
    nest = find_loop_nests(prog)[0]
    jammed = unroll_and_jam(prog, nest, 4)
    print(program_to_str(jammed))
    assert np.array_equal(run_program(prog).arrays["a"],
                          run_program(jammed).arrays["a"])

    print("=== Fig 3.4: software pipelining (modulo schedule) ===")
    from repro.workloads.simple import build_fg_nest
    fg = build_fg_nest(m=8, n=4)
    fg_nest = find_loop_nests(fg)[0]
    _, _, _, dfg, _, _ = analyze_nest(fg, fg_nest, 1,
                                      delay_fn=ACEV.library.delay)
    sched = modulo_schedule(dfg, ACEV.library)
    print(f"II = {sched.ii} (RecMII {sched.rec_mii}, ResMII {sched.res_mii}); "
          f"schedule:")
    for node in dfg.nodes:
        if node.is_operator:
            t = sched.time[node.nid]
            print(f"  cycle {t}: {node!r}  "
                  f"(modulo slot {t % sched.ii})")
    print("\nconsecutive iterations overlap every"
          f" {sched.ii} cycles — the loop prolog/epilog of Fig. 3.4.")


if __name__ == "__main__":
    main()
