#!/usr/bin/env python3
"""DES through the full pipeline (Table 6.2's DES-mem / DES-hw rows).

* validates the reference cipher against the classic known-answer vector;
* checks the IR core against the reference for both table variants;
* squashes the 16-round loop and re-verifies;
* contrasts the -mem (S-boxes on the memory bus) and -hw (S-box ROMs)
  hardware behaviour: jam congests only the former.

Run:  python examples/des_encryption.py
"""

from repro.analysis import find_kernel_nests
from repro.core import unroll_and_squash
from repro.hw import normalize
from repro.ir import run_program
from repro.nimble import compile_variants
from repro.workloads import des


def main() -> None:
    tv = des.TEST_VECTOR
    ct = des.encrypt_block(tv["key"], tv["plaintext"])
    print(f"KAT: {ct:016x}  ({'OK' if ct == tv['ciphertext'] else 'FAIL'})")

    prog = des.build_program(m_blocks=4, variant="hw")
    exp = des.reference_output(prog.arrays["data_in"].init)
    got = run_program(prog).arrays["data_out"]
    print(f"IR core (4 blocks): {'OK' if list(got) == list(exp) else 'FAIL'}")

    nest = find_kernel_nests(prog)[0]
    for ds in (2, 4):
        res = unroll_and_squash(prog, nest, ds)
        got = run_program(res.program).arrays["data_out"]
        print(f"squash({ds}): ciphertext unchanged  "
              f"{'OK' if list(got) == list(exp) else 'FAIL'}")

    for variant in ("mem", "hw"):
        prog = des.build_program(m_blocks=32, variant=variant)
        nest = find_kernel_nests(prog)[0]
        vs = compile_variants(prog, nest, factors=(2, 4, 8, 16))
        base = vs.original
        jam_iis = [vs.jam[k].ii for k in (2, 4, 8, 16)]
        sq_iis = [vs.squash[k].ii for k in (2, 4, 8, 16)]
        print(f"\ndes-{variant}: original II={base.ii}, "
              f"pipelined II={vs.pipelined.ii}")
        print(f"  jam    II over factors: {jam_iis}"
              f"  <- {'congests (S-box loads on the bus)' if variant == 'mem' else 'flat (S-box ROMs are port-free)'}")
        print(f"  squash II over factors: {sq_iis}"
              f"  <- floor = memory ResMII" if variant == "mem"
              else f"  squash II over factors: {sq_iis}")
        best = max((normalize(base, p) for p in vs.all_points()),
                   key=lambda n: n.efficiency)
        print(f"  best efficiency: {best.point.label} "
              f"({best.efficiency:.2f} speedup/area)")


if __name__ == "__main__":
    main()
