#!/usr/bin/env python3
"""Quickstart: unroll-and-squash in five steps.

Builds the thesis's §4.3 running example (Fig. 4.1)::

    for (i=0; i<M; i++) {
      a = in[i];
      for (j=0; j<N; j++) { b = a + i; c = b - j; a = (c & 15) * k; }
      out[i] = a;
    }

then (1) checks legality, (2) shows the DFG with its registers and
cycles, (3) pipelines it into DS stages, (4) emits the transformed
software and verifies it bit-for-bit, and (5) prices the design on the
ACEV hardware model.

Run:  python examples/quickstart.py [DS]
"""

import sys

import numpy as np

from repro.analysis import find_kernel_nests
from repro.core import check_squash, unroll_and_squash
from repro.hw import normalize
from repro.ir import program_to_str, run_program
from repro.nimble import compile_original, compile_squash
from repro.workloads.simple import build_running_example


def main(ds: int = 4) -> None:
    prog = build_running_example(m=8, n=5)
    nest = find_kernel_nests(prog)[0]

    print("=== original program (Fig. 4.1) ===")
    print(program_to_str(prog))

    # 1. legality (§4.1)
    chk = check_squash(prog, nest, ds)
    print(f"legal for DS={ds}: {chk.ok}")
    print(f"  outer trip {chk.outer_trip}, inner trip {chk.inner_trip}")
    live = chk.liveness
    print(f"  live-in: {sorted(live.live_in)}  carried: {sorted(live.carried)}"
          f"  invariant: {sorted(live.invariant_reads)}\n")

    # 2-3. DFG + stage assignment
    res = unroll_and_squash(prog, nest, ds)
    print("=== DFG (registers / operators / cycles) ===")
    for node in res.dfg.nodes:
        if node.kind in ("reg", "inc") or node.is_operator:
            stage = res.stages.stage.get(node.nid, "-")
            print(f"  {node!r:<22} stage {stage}")
    backs = ", ".join(f"{e.src!r}->{e.dst!r}" for e in res.dfg.backedges())
    print(f"  backedges: {backs}")
    print(f"  critical path: {res.stages.critical_path} cycles; "
          f"pipeline registers: {res.pipeline_registers}\n")

    # 4. emitted software, verified against the original
    print(f"=== squashed program (DS={ds}) — prolog/steady/epilog ===")
    text = program_to_str(res.program)
    print(text if len(text) < 4000 else text[:4000] + "  ...\n")
    ref = run_program(prog, params={"k": 3}).arrays["out"]
    got = run_program(res.program, params={"k": 3}).arrays["out"]
    assert list(ref) == list(got)
    print(f"functional check: transformed output == original output  OK\n")

    # 5. hardware cost on the ACEV model
    base = compile_original(prog, nest)
    point = compile_squash(prog, nest, ds, base_ii=base.ii)
    n = normalize(base, point)
    print("=== hardware estimate (ACEV model) ===")
    print(f"  original : II={base.ii:>2}  area={base.area_rows:>5.0f} rows  "
          f"registers={base.registers}")
    print(f"  squash({ds}): II={point.ii:>2}  area={point.area_rows:>5.0f} rows  "
          f"registers={point.registers}")
    print(f"  speedup {n.speedup:.2f}x at {n.area_factor:.2f}x area  "
          f"=> efficiency {n.efficiency:.2f}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4)
