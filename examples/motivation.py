#!/usr/bin/env python3
"""Chapter 2 walk-through: why unroll-and-squash.

Reproduces the motivating comparison on the f/g nest (Figs. 2.1-2.4):
original vs unroll-and-jam(2) vs unroll-and-squash(2), with the emitted
code, the cycle counts, and the operator-occupancy timeline.

Run:  python examples/motivation.py
"""

import numpy as np

from repro.analysis import find_kernel_nests
from repro.core import unroll_and_squash
from repro.harness import format_fig_2_4, run_fig_2_4
from repro.hw import normalize
from repro.ir import program_to_str, run_program
from repro.nimble import compile_jam, compile_original, compile_squash
from repro.transforms import unroll_and_jam
from repro.workloads.simple import build_fg_nest, fg_reference


def main() -> None:
    m, n = 8, 4
    prog = build_fg_nest(m=m, n=n)
    nest = find_kernel_nests(prog)[0]

    print("=== Fig 2.1: the original nest ===")
    print(program_to_str(prog))

    print("=== Fig 2.2: unroll-and-jam by 2 (operators double) ===")
    jammed = unroll_and_jam(prog, nest, 2)
    print(program_to_str(jammed))

    print("=== Fig 2.3: unroll-and-squash by 2 (registers only) ===")
    print("(rotation form: a uniform steady-state tick + shift/rotate moves,")
    print(" exactly the thesis's emitted software)")
    res = unroll_and_squash(prog, nest, 2, emit_mode="rotation")
    print(program_to_str(res.program))

    # all three compute the same stream
    exp = fg_reference(prog.arrays["data_in"].init, n)
    for label, p in (("original", prog), ("jam(2)", jammed),
                     ("squash(2)", res.program)):
        out = run_program(p).arrays["data_out"]
        assert list(out) == list(exp), label
    print("all three variants produce identical output  OK\n")

    # the chapter's cycle arithmetic
    base = compile_original(prog, nest)
    jam2 = compile_jam(prog, nest, 2, base_ii=base.ii)
    sq2 = compile_squash(prog, nest, 2, base_ii=base.ii)
    print("variant      II  ops(rows)  total-cycles  speedup")
    for p in (base, jam2, sq2):
        nm = normalize(base, p)
        print(f"{p.label:<12} {p.ii:>2}  {p.op_rows:>9}  "
              f"{p.total_cycles:>12.0f}  {nm.speedup:>7.2f}")
    print()

    print(format_fig_2_4(run_fig_2_4(ds=2)))
    print("jam fills the area; squash fills the idle time slots (Fig. 2.4).")


if __name__ == "__main__":
    main()
