"""Setup shim for environments whose pip lacks the `wheel` package.

All metadata lives in pyproject.toml; this file only enables the legacy
editable-install path (`pip install -e .` -> `setup.py develop`).
"""
from setuptools import setup

setup()
