"""Packaging for the unroll-and-squash reproduction.

numpy is a hard dependency: the scheduler core
(:mod:`repro.hw.sched_kernel`) runs its placement/probe loops over
dense arrays, the workloads seed their input arrays from it, and the
simulators check values against numpy references.  The pure-Python
scheduler reference (``REPRO_SCHED_KERNEL=0``) exists for parity
testing, not for numpy-free installs.
"""
from setuptools import find_packages, setup

setup(
    name="repro-unroll-and-squash",
    version="0.7.0",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
)
